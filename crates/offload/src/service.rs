//! The dedicated service thread and its client handles.
//!
//! [`OffloadRuntime`] owns a thread that is the *only* executor of a
//! [`Service`]'s logic — the paper's §3.1.3 observation that "sequential
//! execution can be guaranteed if all allocation codes are running in one
//! specific core", which is what lets the service's internal state dispense
//! with atomics entirely (the service is `&mut self` throughout).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ngm_pmu::PmuSession;
use ngm_telemetry::clock::cycles_now;
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::span::{call_span_id, post_span_id, SpanPhase};
use ngm_telemetry::trace::{TraceEventKind, TraceRing};

use crate::error::ServiceError;
#[cfg(feature = "faultinject")]
use crate::fault::{FaultAction, FaultState};
use crate::pin::pin_current_thread_verified;
use crate::ring::{spsc, Consumer, Producer, PushError};
use crate::slot::{CallDeadline, RequestSlot};
use crate::stats::{RuntimeStats, StatsSnapshot};
use crate::telemetry::RuntimeTelemetry;
use crate::wait::{WaitState, WaitStrategy};

/// A function offloaded to the dedicated core.
///
/// `call` handles synchronous requests (the paper's `malloc`), `post`
/// handles asynchronous ones (`free`). Neither takes `&self` — exclusive
/// access is structural, so implementations need no locks or atomics.
pub trait Service: Send + 'static {
    /// Synchronous request payload.
    type Req: Send + 'static;
    /// Synchronous response payload.
    type Resp: Send + 'static;
    /// Fire-and-forget message payload.
    type Post: Send + 'static;

    /// Called once on the service thread before the polling loop starts
    /// (after pinning). Lets services mark the thread, e.g. so a global
    /// allocator can detect re-entrant allocation from the service itself.
    fn on_start(&mut self) {}

    /// Handles one synchronous request.
    fn call(&mut self, req: Self::Req) -> Self::Resp;

    /// Handles one asynchronous message.
    fn post(&mut self, msg: Self::Post);

    /// Called when a polling round found no work; a place for deferred
    /// housekeeping (e.g. returning free pages to the OS).
    fn idle(&mut self) {}
}

struct ClientChannel<S: Service> {
    slot: Arc<RequestSlot<S::Req, S::Resp>>,
    posts: Consumer<S::Post>,
    /// A drop fault is active on this client: the request with this
    /// publish sequence stays unserved until the client retracts it.
    #[cfg(feature = "faultinject")]
    dropping: Option<u64>,
}

struct Shared<S: Service> {
    stop: AtomicBool,
    stats: Arc<RuntimeStats>,
    telemetry: Arc<RuntimeTelemetry>,
    injector: Mutex<Vec<ClientChannel<S>>>,
    has_new: AtomicBool,
    #[cfg(feature = "faultinject")]
    fault: Arc<FaultState>,
}

/// A client's endpoint to the service core. One handle per client thread;
/// the handle is `Send` but deliberately not `Clone` or `Sync`, mirroring
/// the one-slot-per-thread protocol of the paper's prototype.
pub struct ClientHandle<S: Service> {
    slot: Arc<RequestSlot<S::Req, S::Resp>>,
    posts: Producer<S::Post>,
    wait: WaitStrategy,
    deadline: Option<Duration>,
    shard: usize,
    /// Set when a deadline-bounded call was abandoned mid-serve: the slot
    /// protocol is unrecoverable and this handle must never call again.
    poisoned: bool,
    /// The runtime's retiring gate (see [`OffloadRuntime::begin_retire`]).
    retiring: Arc<AtomicBool>,
    stats: Arc<RuntimeStats>,
    telemetry: Arc<RuntimeTelemetry>,
    trace: Option<Arc<TraceRing>>,
    /// Client-local sequence for post span ids (posts have no slot
    /// publish sequence to mint from).
    post_seq: u64,
    pmu: ClientPmu,
    /// Submission timestamp of the in-flight non-blocking call, if any
    /// (one slot ⇒ at most one). Completion telemetry (histograms, span
    /// events) is emitted when the response is collected or the call is
    /// retracted.
    nb_t0: Option<u64>,
    /// Whether the in-flight non-blocking call is a batched refill
    /// (routes its latency to the refill histogram).
    nb_batched: bool,
}

/// Why a deadline-aware post could not be enqueued. Unlike
/// [`ServiceError`] this hands the unsent message back on deadline so the
/// caller can reroute it (the malloc front-end diverts such frees to the
/// owning shard's orphan stack instead of leaking them).
#[derive(Debug, PartialEq, Eq)]
pub enum PostError<T> {
    /// The service thread is gone; the message was dropped and counted in
    /// [`RuntimeStats::posts_dropped`].
    Stopped,
    /// The ring stayed full for the whole deadline budget; the message
    /// comes back to the caller.
    Deadline {
        /// The shard the post was addressed to.
        shard: usize,
        /// How long the caller waited before giving up.
        waited: Duration,
        /// The message that could not be enqueued.
        msg: T,
    },
    /// Non-blocking post: the ring is full *right now* and the caller
    /// asked not to wait at all. The message comes back for the caller to
    /// buffer and retry after completing in-flight work — transient,
    /// unlike [`PostError::Deadline`], which means the ring stayed full
    /// for a whole deadline budget.
    WouldBlock {
        /// The message that could not be enqueued.
        msg: T,
    },
}

/// What a successful [`ClientHandle::try_post`] observed on the way in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PostOutcome {
    /// Full-ring retries paid before the message fit. Zero means the ring
    /// had room immediately; sustained nonzero values mean the service
    /// shard is saturated and traffic should rebalance away from it.
    pub full_retries: u32,
}

/// A client handle's PMU measurement state. The session is armed lazily
/// on the first request so the counters are opened on (and attribute to)
/// the thread that actually issues requests, not whichever thread called
/// `register_client`.
enum ClientPmu {
    /// Profiling disabled for this runtime.
    Off,
    /// Profiling on, no request issued yet.
    Unarmed,
    /// Counting this thread since its first request.
    Running(Box<PmuSession>),
}

impl ClientPmu {
    fn arm(&mut self) {
        if matches!(self, ClientPmu::Unarmed) {
            let mut session = Box::new(PmuSession::new());
            session.begin();
            *self = ClientPmu::Running(session);
        }
    }
}

impl<S: Service> Drop for ClientHandle<S> {
    fn drop(&mut self) {
        if let ClientPmu::Running(session) = &mut self.pmu {
            self.telemetry.record_client_pmu(session.finish());
        }
    }
}

impl<S: Service> ClientHandle<S> {
    /// Completes the telemetry for one successful synchronous round trip:
    /// phase histograms (unbatched calls only, so the five phase series
    /// partition exactly the `call_cycles` population) and — when tracing
    /// is on — the six span phase events, stamped with their true
    /// boundary timestamps from the slot.
    fn finish_call_span(&mut self, t0: u64, t5: u64, batched: bool) {
        let stamps = self.slot.phase_stamps();
        if !batched {
            self.telemetry.record_phases(t0, stamps, t5);
        }
        if let Some(ring) = &self.trace {
            let id = call_span_id(ring.thread(), self.slot.publish_seq());
            let (t1, t2, t3, t4) = stamps;
            for (tsc, phase) in [
                (t0, SpanPhase::Enqueue),
                (t1, SpanPhase::RingResident),
                (t2, SpanPhase::Claimed),
                (t3, SpanPhase::Served),
                (t4, SpanPhase::Published),
                (t5, SpanPhase::Observed),
            ] {
                ring.push_at(tsc.clamp(t0, t5), TraceEventKind::Span, id, phase.code());
            }
        }
    }

    /// Traces the terminal events of a call that never completed: the
    /// span reached the ring (and, for an abandoned call, the server) but
    /// ends in a terminal phase instead of `Observed`. The publish
    /// sequence in the span id guarantees the retry the caller issues
    /// next is a distinct span.
    fn finish_failed_span(&mut self, t0: u64, terminal: SpanPhase) {
        if let Some(ring) = &self.trace {
            let id = call_span_id(ring.thread(), self.slot.publish_seq());
            let now = cycles_now();
            let (t1, t2, _, _) = self.slot.phase_stamps();
            ring.push_at(t0, TraceEventKind::Span, id, SpanPhase::Enqueue.code());
            ring.push_at(
                t1.clamp(t0, now),
                TraceEventKind::Span,
                id,
                SpanPhase::RingResident.code(),
            );
            if terminal == SpanPhase::Abandoned {
                // The server claimed the request before dying mid-serve;
                // its claim stamp is a racy-but-harmless read.
                ring.push_at(
                    t2.clamp(t0, now),
                    TraceEventKind::Span,
                    id,
                    SpanPhase::Claimed.code(),
                );
            }
            ring.push_at(now, TraceEventKind::Span, id, terminal.code());
        }
    }

    /// Sends a synchronous request and blocks (by the handle's wait
    /// strategy) until the service core responds.
    ///
    /// The round trip is timestamped into the runtime's call-latency
    /// histogram plus the five phase histograms derived from the slot's
    /// boundary stamps — a handful of relaxed increments, still far below
    /// the round trip being measured.
    pub fn call(&mut self, req: S::Req) -> S::Resp {
        self.pmu.arm();
        let t0 = cycles_now();
        let resp = self.slot.call(req, self.wait);
        let t5 = cycles_now();
        self.telemetry.call_cycles.record(t5.saturating_sub(t0));
        self.finish_call_span(t0, t5, false);
        resp
    }

    /// Like [`ClientHandle::call`], but for requests that carry a *batch*
    /// of work (magazine refills in the malloc deployment). The round
    /// trip is timestamped into the separate refill-latency histogram so
    /// the amortized batched cost stays distinguishable from the per-call
    /// cost, and the batched-call counter is bumped.
    pub fn call_batched(&mut self, req: S::Req) -> S::Resp {
        self.pmu.arm();
        let t0 = cycles_now();
        let resp = self.slot.call(req, self.wait);
        let t5 = cycles_now();
        self.telemetry.refill_cycles.record(t5.saturating_sub(t0));
        self.finish_call_span(t0, t5, true);
        self.stats
            .batched_calls_served
            .fetch_add(1, Ordering::Relaxed);
        resp
    }

    /// Like [`ClientHandle::call`], but hang-proof: refuses up front when
    /// this runtime's service thread is known dead (its ring closed), and
    /// — when the runtime has a deadline configured — bounds the wait for
    /// the response, returning [`ServiceError::Deadline`] instead of
    /// blocking on a wedged shard forever.
    ///
    /// A deadline that fires while the serve is in flight grants one
    /// grace period for the response (a served allocation is never
    /// discarded); if even that expires the slot is poisoned and every
    /// later call on this handle fails fast with
    /// [`ServiceError::ServiceStopped`].
    pub fn try_call(&mut self, req: S::Req) -> Result<S::Resp, ServiceError> {
        self.try_call_inner(req, false)
    }

    /// As [`ClientHandle::try_call`] for batched requests: latency lands
    /// in the refill histogram and the batched-call counter is bumped.
    pub fn try_call_batched(&mut self, req: S::Req) -> Result<S::Resp, ServiceError> {
        self.try_call_inner(req, true)
    }

    fn try_call_inner(&mut self, req: S::Req, batched: bool) -> Result<S::Resp, ServiceError> {
        if self.poisoned {
            return Err(ServiceError::ServiceStopped);
        }
        if !self.is_open() {
            self.stats.mark_service_down();
            return Err(ServiceError::ServiceStopped);
        }
        if self.retiring.load(Ordering::Acquire) {
            // The shard is draining toward retirement: refuse new
            // allocations (callers route elsewhere) but keep the post
            // path open so address-routed frees can land and the shard
            // can reach a zero balance.
            return Err(ServiceError::ShardRetiring { shard: self.shard });
        }
        let Some(budget) = self.deadline else {
            return Ok(if batched {
                self.call_batched(req)
            } else {
                self.call(req)
            });
        };
        self.pmu.arm();
        let t0 = cycles_now();
        match self.slot.call_deadline(req, self.wait, budget) {
            CallDeadline::Ok(resp) => {
                let t5 = cycles_now();
                if batched {
                    self.telemetry.refill_cycles.record(t5.saturating_sub(t0));
                    self.stats
                        .batched_calls_served
                        .fetch_add(1, Ordering::Relaxed);
                } else {
                    self.telemetry.call_cycles.record(t5.saturating_sub(t0));
                }
                self.finish_call_span(t0, t5, batched);
                Ok(resp)
            }
            CallDeadline::Retracted(waited) => {
                self.finish_failed_span(t0, SpanPhase::Retracted);
                self.stats.record_deadline();
                Err(ServiceError::Deadline {
                    shard: self.shard,
                    waited,
                })
            }
            CallDeadline::Abandoned(waited) => {
                // The service consumed the request and never answered:
                // it is wedged mid-serve or dead. The slot cannot be
                // reused; retire this handle.
                self.finish_failed_span(t0, SpanPhase::Abandoned);
                self.poisoned = true;
                self.stats.record_deadline();
                self.stats.mark_service_down();
                Err(ServiceError::Deadline {
                    shard: self.shard,
                    waited,
                })
            }
        }
    }

    /// Posts an asynchronous message, spinning if the ring is momentarily
    /// full. The enqueue latency (including full-ring retries) lands in
    /// the runtime's post-latency histogram.
    ///
    /// If the service thread is gone the message is dropped and counted
    /// in [`RuntimeStats::posts_dropped`] — use [`ClientHandle::try_post`]
    /// to observe that (and ring pressure) explicitly.
    pub fn post(&mut self, msg: S::Post) {
        let _ = self.try_post(msg);
    }

    /// Posts an asynchronous message, reporting ring pressure and service
    /// death instead of hiding them.
    ///
    /// On success the returned [`PostOutcome`] says how many full-ring
    /// retries the enqueue needed — the saturation signal the sharded
    /// front-end's rebalance path keys off. If the service thread is gone
    /// the message is dropped, counted in [`RuntimeStats::posts_dropped`],
    /// the runtime's `service_down` flag is raised, and
    /// [`ServiceError::ServiceStopped`] comes back. A ring that stays
    /// full for the whole deadline budget also drops the message (counted
    /// the same way) and reports [`ServiceError::Deadline`]; use
    /// [`ClientHandle::try_post_deadline`] to get the message back and
    /// reroute it instead.
    pub fn try_post(&mut self, msg: S::Post) -> Result<PostOutcome, ServiceError> {
        match self.try_post_deadline(msg) {
            Ok(outcome) => Ok(outcome),
            Err(PostError::Stopped) => Err(ServiceError::ServiceStopped),
            Err(PostError::Deadline { shard, waited, msg }) => {
                drop(msg);
                self.stats.record_post_dropped();
                Err(ServiceError::Deadline { shard, waited })
            }
            // try_post_deadline never refuses without waiting, but the
            // hierarchy maps cleanly anyway.
            Err(PostError::WouldBlock { msg }) => {
                drop(msg);
                self.stats.record_post_dropped();
                Err(ServiceError::WouldBlock)
            }
        }
    }

    /// As [`ClientHandle::try_post`], but a deadline expiry hands the
    /// message back ([`PostError::Deadline`]) instead of dropping it, so
    /// the caller can reroute it (e.g. to an orphan stack) and keep
    /// alloc/free accounting exact.
    pub fn try_post_deadline(&mut self, msg: S::Post) -> Result<PostOutcome, PostError<S::Post>> {
        self.pmu.arm();
        let t0 = cycles_now();
        let mut msg = msg;
        let mut state = WaitState::with_budget(self.wait, self.deadline);
        let mut retries = 0u32;
        loop {
            match self.posts.push(msg) {
                Ok(()) => break,
                Err(PushError::Full(m)) => {
                    self.stats.post_full_retries.fetch_add(1, Ordering::Relaxed);
                    retries = retries.saturating_add(1);
                    msg = m;
                    if !state.pause() {
                        self.stats.record_deadline();
                        self.stats.add_retries(u64::from(retries));
                        return Err(PostError::Deadline {
                            shard: self.shard,
                            waited: state.waited(),
                            msg,
                        });
                    }
                }
                Err(PushError::Disconnected(_)) => {
                    self.stats.record_post_dropped();
                    self.stats.mark_service_down();
                    return Err(PostError::Stopped);
                }
            }
        }
        self.stats.add_retries(u64::from(retries));
        let t1 = cycles_now();
        self.telemetry.post_cycles.record(t1.saturating_sub(t0));
        if let Some(ring) = &self.trace {
            ring.push(TraceEventKind::Post, self.posts.len() as u64, 0);
            // A post's span has two phases: it was decided on (enqueue)
            // and it reached the ring (ring-resident); the service's
            // drain is batched and anonymous, so the span ends there.
            let id = post_span_id(ring.thread(), self.post_seq);
            self.post_seq += 1;
            ring.push_at(t0, TraceEventKind::Span, id, SpanPhase::Enqueue.code());
            ring.push_at(t1, TraceEventKind::Span, id, SpanPhase::RingResident.code());
        }
        Ok(PostOutcome {
            full_retries: retries,
        })
    }

    /// Posts an asynchronous message without waiting at all: one push
    /// attempt. A full ring hands the message straight back as
    /// [`PostError::WouldBlock`] (counted in
    /// [`RuntimeStats::wouldblocks`]) so the caller can buffer it and
    /// retry after draining completions — the submission-queue front-end's
    /// free path. Success telemetry matches [`ClientHandle::try_post`].
    pub fn try_post_nonblocking(
        &mut self,
        msg: S::Post,
    ) -> Result<PostOutcome, PostError<S::Post>> {
        self.pmu.arm();
        let t0 = cycles_now();
        match self.posts.push(msg) {
            Ok(()) => {}
            Err(PushError::Full(m)) => {
                self.stats.post_full_retries.fetch_add(1, Ordering::Relaxed);
                self.stats.record_wouldblock();
                return Err(PostError::WouldBlock { msg: m });
            }
            Err(PushError::Disconnected(_)) => {
                self.stats.record_post_dropped();
                self.stats.mark_service_down();
                return Err(PostError::Stopped);
            }
        }
        let t1 = cycles_now();
        self.telemetry.post_cycles.record(t1.saturating_sub(t0));
        if let Some(ring) = &self.trace {
            ring.push(TraceEventKind::Post, self.posts.len() as u64, 0);
            let id = post_span_id(ring.thread(), self.post_seq);
            self.post_seq += 1;
            ring.push_at(t0, TraceEventKind::Span, id, SpanPhase::Enqueue.code());
            ring.push_at(t1, TraceEventKind::Span, id, SpanPhase::RingResident.code());
        }
        Ok(PostOutcome { full_retries: 0 })
    }

    /// Non-blocking submission: publishes `req` into the request slot and
    /// returns immediately, without waiting for the response. Completion
    /// is collected with [`ClientHandle::nb_poll`] (or awaited via
    /// [`ClientHandle::register_waker`]); an unwanted submission is
    /// cancelled with [`ClientHandle::nb_retract`].
    ///
    /// Errors hand the request back along with the reason:
    /// [`ServiceError::WouldBlock`] when a previous submission is still in
    /// flight (one slot ⇒ one in-flight call), plus the same
    /// poisoned/stopped/retiring refusals as [`ClientHandle::try_call`].
    pub fn nb_begin(&mut self, req: S::Req) -> Result<(), (S::Req, ServiceError)> {
        self.nb_begin_inner(req, false)
    }

    /// As [`ClientHandle::nb_begin`] for batched requests (magazine
    /// refills): completion latency lands in the refill histogram and the
    /// batched-call counter is bumped when collected.
    pub fn nb_begin_batched(&mut self, req: S::Req) -> Result<(), (S::Req, ServiceError)> {
        self.nb_begin_inner(req, true)
    }

    fn nb_begin_inner(&mut self, req: S::Req, batched: bool) -> Result<(), (S::Req, ServiceError)> {
        if self.poisoned {
            return Err((req, ServiceError::ServiceStopped));
        }
        if !self.is_open() {
            self.stats.mark_service_down();
            return Err((req, ServiceError::ServiceStopped));
        }
        if self.retiring.load(Ordering::Acquire) {
            return Err((req, ServiceError::ShardRetiring { shard: self.shard }));
        }
        self.pmu.arm();
        let t0 = cycles_now();
        match self.slot.begin(req) {
            Ok(()) => {
                self.nb_t0 = Some(t0);
                self.nb_batched = batched;
                Ok(())
            }
            Err(req) => {
                self.stats.record_wouldblock();
                Err((req, ServiceError::WouldBlock))
            }
        }
    }

    /// Collects the in-flight non-blocking call's response if it has been
    /// published; `None` while it is still pending (or none is in
    /// flight). Completion telemetry — latency histogram (call or refill)
    /// and the six span phase events — is emitted exactly as for the
    /// blocking paths, stamped from submission to collection.
    pub fn nb_poll(&mut self) -> Option<S::Resp> {
        let resp = self.slot.poll_response()?;
        let t5 = cycles_now();
        let t0 = self.nb_t0.take().unwrap_or(t5);
        if self.nb_batched {
            self.telemetry.refill_cycles.record(t5.saturating_sub(t0));
            self.stats
                .batched_calls_served
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.telemetry.call_cycles.record(t5.saturating_sub(t0));
        }
        self.finish_call_span(t0, t5, self.nb_batched);
        Some(resp)
    }

    /// Whether a non-blocking submission is currently in flight (begun
    /// and neither collected nor successfully retracted).
    pub fn nb_inflight(&self) -> bool {
        self.nb_t0.is_some()
    }

    /// Registers `waker` to fire when the in-flight submission's response
    /// is published (the RESPONSE release edge). Wake-safe against the
    /// publish race: a response that already landed fires the waker from
    /// this call. See [`RequestSlot::register_waker`].
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.slot.register_waker(waker);
    }

    /// Cancels the in-flight non-blocking submission. `true` means the
    /// request was retracted before the service claimed it: the slot is
    /// reusable, the registered waker (if any) will never fire, and the
    /// span ends in its `Retracted` terminal phase — a later retry is a
    /// distinct span by construction. `false` means the service already
    /// claimed it: the caller must keep polling (a served response is
    /// never discarded, which keeps alloc/free accounting exact).
    pub fn nb_retract(&mut self) -> bool {
        if !self.slot.retract() {
            return false;
        }
        if let Some(t0) = self.nb_t0.take() {
            self.finish_failed_span(t0, SpanPhase::Retracted);
        }
        true
    }

    /// Whether this handle's service thread is still consuming: `false`
    /// once the ring's consumer is gone (service stopped, panicked, or
    /// retired this client).
    pub fn is_open(&self) -> bool {
        !self.posts.is_closed()
    }

    /// Number of posted messages not yet drained (racy snapshot).
    pub fn pending_posts(&self) -> usize {
        self.posts.len()
    }

    /// The runtime's shared live counters. Client-side layers use this to
    /// publish gauges (e.g. magazine occupancy) at batch boundaries.
    pub fn runtime_stats(&self) -> &Arc<RuntimeStats> {
        &self.stats
    }

    /// This handle's event-trace ring, when tracing is enabled. Higher
    /// layers push domain events (alloc/free with sizes) here; the
    /// offload layer itself records post/refill/wait-transition events.
    pub fn trace_ring(&self) -> Option<&Arc<TraceRing>> {
        self.trace.as_ref()
    }

    /// The runtime's shared telemetry (histograms, trace rings). The
    /// blackbox flight recorder and the heat reporter read through this.
    pub fn telemetry(&self) -> &Arc<RuntimeTelemetry> {
        &self.telemetry
    }

    /// Racy peek at this handle's request-slot protocol state
    /// (`"empty"`/`"request"`/`"serving"`/`"response"`), for diagnostics
    /// like the blackbox dump — not a synchronization point.
    pub fn slot_state_label(&self) -> &'static str {
        self.slot.state_label()
    }
}

/// Default per-operation deadline budget. Generous — six orders of
/// magnitude above a healthy round trip (sub-microsecond) — so it never
/// fires on a merely oversubscribed machine, but converts a genuinely
/// wedged shard into a typed error in bounded time.
pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(250);

/// Configuration for [`OffloadRuntime::try_start`]: a plain value with
/// public fields, `Default`-able and `const`-friendly via
/// [`RuntimeConfig::new`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Core to pin the service thread to; `None` leaves it floating. Pin
    /// failures are recorded in the runtime stats, not fatal (this box
    /// may expose a single vCPU).
    pub core: Option<usize>,
    /// Wait strategy for the service thread's idle polling; `None` picks
    /// the machine-appropriate default at start time.
    pub server_wait: Option<WaitStrategy>,
    /// Wait strategy for clients blocked on synchronous calls; `None`
    /// picks the machine-appropriate default at start time.
    pub client_wait: Option<WaitStrategy>,
    /// Capacity of each client's asynchronous post ring.
    pub ring_capacity: usize,
    /// Maximum posts drained from one client per polling round.
    pub drain_batch: usize,
    /// Per-thread event-trace ring capacity (0 disables tracing). Rings
    /// drop their oldest event on overflow and count the drops.
    pub trace_capacity: usize,
    /// Enables PMU profiling (off by default): the service loop and every
    /// client handle wrap their lifetimes in a [`ngm_pmu::PmuSession`],
    /// attributing cycles and cache/TLB misses to the service core versus
    /// the app cores (§2.3). Falls back to software counters (labeled as
    /// such) wherever `perf_event_open` is unavailable.
    pub profile: bool,
    /// Index of this runtime within a sharded service tier; names the
    /// thread (`ngm-service-<shard>`) and labels its telemetry. A
    /// standalone runtime is shard 0.
    pub shard: usize,
    /// Deadline budget for client operations (`try_call`,
    /// `try_call_batched`, `try_post`): how long a client waits on this
    /// shard before giving up with [`ServiceError::Deadline`]. `None`
    /// restores the pre-deadline unbounded behavior. The infallible
    /// `call`/`call_batched` paths are never bounded — they have no error
    /// channel.
    pub deadline: Option<Duration>,
    /// Socket/cluster this shard's core belongs to. The offload layer
    /// only records it ([`OffloadRuntime::cluster`]); the sharded tier's
    /// elastic controller uses it to place new shards on the least-loaded
    /// cluster and to prefer same-cluster routing. A flat machine is all
    /// cluster 0.
    pub cluster: usize,
}

impl RuntimeConfig {
    /// The `const` default configuration (wait strategies resolve to the
    /// machine-appropriate default when the runtime starts).
    pub const fn new() -> Self {
        RuntimeConfig {
            core: None,
            server_wait: None,
            client_wait: None,
            ring_capacity: 1024,
            drain_batch: 64,
            trace_capacity: 0,
            profile: false,
            shard: 0,
            deadline: Some(DEFAULT_DEADLINE),
            cluster: 0,
        }
    }
}

/// The parts of a runtime that outlive any one service thread: counters,
/// telemetry, the retiring gate, and (under `faultinject`) the fault
/// knobs.
///
/// An elastic shard tier retires a shard (joining its thread) and may
/// later respawn it on the same slot. Starting each epoch through
/// [`OffloadRuntime::try_start_shared`] with the *same* handles keeps the
/// slot's counters monotonic across epochs, keeps long-lived `Arc`
/// borrows (metrics scrapers, blackbox dumps, fault injectors) valid
/// while the slot has no thread, and lets client handles from the old
/// epoch keep reporting into the same books.
#[derive(Debug, Clone)]
pub struct RuntimeHandles {
    /// Live counters, shared by every epoch of the slot.
    pub stats: Arc<RuntimeStats>,
    /// Histograms and trace rings, shared by every epoch of the slot.
    pub telemetry: Arc<RuntimeTelemetry>,
    /// Set while the slot is draining toward retirement; client
    /// `try_call`s refuse with [`ServiceError::ShardRetiring`] so new
    /// allocations route elsewhere while frees keep flowing in.
    retiring: Arc<AtomicBool>,
    /// The slot's fault knobs (persist across epochs so a sweep can wedge
    /// a shard that is currently parked).
    #[cfg(feature = "faultinject")]
    pub fault: Arc<FaultState>,
}

impl RuntimeHandles {
    /// Fresh zeroed handles for one slot, with tracing/profiling per
    /// `cfg`.
    #[must_use]
    pub fn fresh(cfg: &RuntimeConfig) -> Self {
        RuntimeHandles {
            stats: Arc::new(RuntimeStats::new()),
            telemetry: Arc::new(RuntimeTelemetry::with_profiling(
                cfg.trace_capacity,
                cfg.profile,
            )),
            retiring: Arc::new(AtomicBool::new(false)),
            #[cfg(feature = "faultinject")]
            fault: Arc::new(FaultState::new()),
        }
    }

    /// Whether the slot is currently gated against new synchronous calls.
    #[must_use]
    pub fn is_retiring(&self) -> bool {
        self.retiring.load(Ordering::Acquire)
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration for [`OffloadRuntime::start`].
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.4.0",
    note = "use `RuntimeConfig` (plain fields) with `OffloadRuntime::try_start`"
)]
#[derive(Default)]
pub struct RuntimeBuilder {
    cfg: RuntimeConfig,
}

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
impl RuntimeBuilder {
    /// Creates a builder with defaults suited to the current machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the service thread to `core`.
    pub fn pin_to(mut self, core: usize) -> Self {
        self.cfg.core = Some(core);
        self
    }

    /// Wait strategy for the service thread's idle polling.
    pub fn server_wait(mut self, wait: WaitStrategy) -> Self {
        self.cfg.server_wait = Some(wait);
        self
    }

    /// Wait strategy for clients blocked on synchronous calls.
    pub fn client_wait(mut self, wait: WaitStrategy) -> Self {
        self.cfg.client_wait = Some(wait);
        self
    }

    /// Capacity of each client's asynchronous post ring.
    pub fn ring_capacity(mut self, cap: usize) -> Self {
        self.cfg.ring_capacity = cap;
        self
    }

    /// Maximum posts drained from one client per polling round.
    pub fn drain_batch(mut self, batch: usize) -> Self {
        self.cfg.drain_batch = batch;
        self
    }

    /// Enables event tracing with a per-thread ring of `capacity` events.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.cfg.trace_capacity = capacity;
        self
    }

    /// Enables PMU profiling (off by default).
    pub fn profile(mut self, on: bool) -> Self {
        self.cfg.profile = on;
        self
    }

    /// Starts the service thread running `service`.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn the thread (the historical
    /// behavior; [`OffloadRuntime::try_start`] reports it instead).
    pub fn start<S: Service>(self, service: S) -> OffloadRuntime<S> {
        OffloadRuntime::try_start(service, self.cfg).expect("failed to spawn service thread")
    }
}

/// A shard's readiness-grade condition, as reported by
/// [`OffloadRuntime::health`]: the retire gate and the thread's
/// liveness folded into the one answer a health endpoint needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Thread running, accepting synchronous calls.
    Serving,
    /// Thread running but gated by [`OffloadRuntime::begin_retire`]:
    /// draining, posts only.
    Retiring,
    /// The service thread has exited (orderly or by panic).
    Down,
}

impl ShardHealth {
    /// A stable lowercase label (`serving` / `retiring` / `down`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShardHealth::Serving => "serving",
            ShardHealth::Retiring => "retiring",
            ShardHealth::Down => "down",
        }
    }
}

/// Owns the dedicated service thread.
pub struct OffloadRuntime<S: Service> {
    shared: Arc<Shared<S>>,
    thread: Option<JoinHandle<S>>,
    builder_wait: WaitStrategy,
    ring_capacity: usize,
    deadline: Option<Duration>,
    shard: usize,
    cluster: usize,
    retiring: Arc<AtomicBool>,
}

impl<S: Service> OffloadRuntime<S> {
    /// Starts a runtime with default configuration.
    pub fn start(service: S) -> Self {
        Self::try_start(service, RuntimeConfig::new()).expect("failed to spawn service thread")
    }

    /// Starts a runtime with the given configuration, reporting spawn
    /// failure instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ServiceError::SpawnFailed`] when the OS refuses the thread.
    pub fn try_start(service: S, cfg: RuntimeConfig) -> Result<Self, ServiceError> {
        Self::try_start_shared(service, cfg, &RuntimeHandles::fresh(&cfg))
    }

    /// As [`OffloadRuntime::try_start`], but threading pre-existing
    /// [`RuntimeHandles`] through instead of creating fresh ones. An
    /// elastic tier calls this when respawning a retired slot so the new
    /// epoch accumulates into the same counters, telemetry, and fault
    /// knobs the old epoch used. Clears the retiring gate (a respawned
    /// slot is serving again).
    ///
    /// # Errors
    ///
    /// [`ServiceError::SpawnFailed`] when the OS refuses the thread.
    pub fn try_start_shared(
        service: S,
        cfg: RuntimeConfig,
        handles: &RuntimeHandles,
    ) -> Result<Self, ServiceError> {
        handles.retiring.store(false, Ordering::Release);
        // Claim the service loop's trace ring before any client can
        // register; on the slot's first epoch this makes runtime thread
        // id 0 the service loop.
        let service_trace = handles.telemetry.new_ring();
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            stats: Arc::clone(&handles.stats),
            telemetry: Arc::clone(&handles.telemetry),
            injector: Mutex::new(Vec::new()),
            has_new: AtomicBool::new(false),
            #[cfg(feature = "faultinject")]
            fault: Arc::clone(&handles.fault),
        });
        let thread_shared = Arc::clone(&shared);
        let server_wait = cfg.server_wait.unwrap_or_default();
        let thread = std::thread::Builder::new()
            .name(format!("ngm-service-{}", cfg.shard))
            .spawn(move || {
                service_loop(
                    service,
                    thread_shared,
                    service_trace,
                    cfg.core,
                    server_wait,
                    cfg.drain_batch,
                )
            })
            .map_err(|_| ServiceError::SpawnFailed)?;
        Ok(OffloadRuntime {
            shared,
            thread: Some(thread),
            builder_wait: cfg.client_wait.unwrap_or_default(),
            ring_capacity: cfg.ring_capacity,
            deadline: cfg.deadline,
            shard: cfg.shard,
            cluster: cfg.cluster,
            retiring: Arc::clone(&handles.retiring),
        })
    }

    /// The live fault knobs for this shard's service loop (see
    /// [`FaultState`]). Only present under the `faultinject` feature.
    #[cfg(feature = "faultinject")]
    pub fn fault_state(&self) -> &Arc<FaultState> {
        &self.shared.fault
    }

    /// Registers a new client and returns its handle. May be called at any
    /// time, from any thread holding a reference to the runtime.
    pub fn register_client(&self) -> ClientHandle<S> {
        self.register_client_with_pmu(self.shared.telemetry.profiling_enabled())
    }

    /// As [`OffloadRuntime::register_client`], but with explicit control
    /// over whether this handle arms a per-thread PMU session on first
    /// use. A PMU session counts its *whole thread*: a thread holding one
    /// handle per service shard must arm exactly one of them, or every
    /// shard's report would re-count the same thread.
    pub fn register_client_with_pmu(&self, pmu: bool) -> ClientHandle<S> {
        let slot = Arc::new(RequestSlot::new());
        let (tx, rx) = spsc(self.ring_capacity);
        {
            let mut inj = self.shared.injector.lock().expect("injector poisoned");
            inj.push(ClientChannel {
                slot: Arc::clone(&slot),
                posts: rx,
                #[cfg(feature = "faultinject")]
                dropping: None,
            });
        }
        self.shared.has_new.store(true, Ordering::Release);
        self.shared
            .stats
            .clients_registered
            .fetch_add(1, Ordering::Relaxed);
        ClientHandle {
            slot,
            posts: tx,
            wait: self.builder_wait,
            deadline: self.deadline,
            shard: self.shard,
            poisoned: false,
            retiring: Arc::clone(&self.retiring),
            stats: Arc::clone(&self.shared.stats),
            telemetry: Arc::clone(&self.shared.telemetry),
            trace: self.shared.telemetry.new_ring(),
            post_seq: 0,
            pmu: if pmu && self.shared.telemetry.profiling_enabled() {
                ClientPmu::Unarmed
            } else {
                ClientPmu::Off
            },
            nb_t0: None,
            nb_batched: false,
        }
    }

    /// Socket/cluster this shard was placed on (from
    /// [`RuntimeConfig::cluster`]).
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Gates this shard against new synchronous calls: every registered
    /// client's `try_call`/`try_call_batched` starts refusing with
    /// [`ServiceError::ShardRetiring`], while posts (frees) keep flowing
    /// so the shard can drain its balance to zero. The service thread
    /// keeps running; call [`OffloadRuntime::try_shutdown`] once the
    /// drain completes, or [`OffloadRuntime::end_retire`] to abort.
    pub fn begin_retire(&self) {
        self.retiring.store(true, Ordering::Release);
    }

    /// Reopens a retiring shard for synchronous calls (a drain that could
    /// not complete — e.g. the shard wedged mid-drain — aborts back to
    /// serving rather than hanging the controller).
    pub fn end_retire(&self) {
        self.retiring.store(false, Ordering::Release);
    }

    /// Whether [`OffloadRuntime::begin_retire`] is in effect.
    pub fn is_retiring(&self) -> bool {
        self.retiring.load(Ordering::Acquire)
    }

    /// Asks the service thread to stop without consuming the runtime.
    ///
    /// Outstanding posts are drained, then the loop exits and the shard
    /// stops accepting work — clients observe the closed rings and get
    /// [`ServiceError::ServiceStopped`] from their `try_*` calls. The
    /// sharded tier uses this to decommission one shard while the others
    /// keep serving; a later [`OffloadRuntime::try_shutdown`] joins the
    /// already-exited thread and recovers the service state normally.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Whether the service thread has exited (orderly or by panic).
    /// Observing `true` before shutdown marks the runtime's
    /// `service_down` flag.
    pub fn is_finished(&self) -> bool {
        let done = self
            .thread
            .as_ref()
            .map(JoinHandle::is_finished)
            .unwrap_or(true);
        if done && !self.shared.stop.load(Ordering::Acquire) {
            self.shared.stats.mark_service_down();
        }
        done
    }

    /// This shard's liveness/lifecycle rolled into one readiness-grade
    /// answer — what a health endpoint wants, without reaching into the
    /// retire gate and thread handle separately.
    pub fn health(&self) -> ShardHealth {
        if self.is_finished() {
            ShardHealth::Down
        } else if self.is_retiring() {
            ShardHealth::Retiring
        } else {
            ShardHealth::Serving
        }
    }

    /// A snapshot of the runtime's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The runtime's telemetry: latency histograms and trace rings.
    pub fn telemetry(&self) -> &Arc<RuntimeTelemetry> {
        &self.shared.telemetry
    }

    /// The full exportable metrics snapshot (counters, gauges, latency
    /// histograms) — render it with
    /// [`MetricsSnapshot::to_prometheus_text`] or
    /// [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.telemetry.metrics(&self.stats())
    }

    /// Stops the service thread (draining outstanding posts first) and
    /// returns the service plus final stats.
    ///
    /// Clients must have finished their synchronous calls; any request
    /// published after shutdown begins may never be answered.
    pub fn shutdown(mut self) -> (S, StatsSnapshot) {
        self.shared.stop.store(true, Ordering::Release);
        let svc = self
            .thread
            .take()
            .expect("shutdown called twice")
            .join()
            .expect("service thread panicked");
        (svc, self.shared.stats.snapshot())
    }

    /// As [`OffloadRuntime::shutdown`], but a panicked service thread
    /// comes back as [`ShardFailure`] (with the final counters) instead
    /// of propagating the panic — the sharded tier reports a dead shard
    /// and keeps the survivors' accounting.
    // Cold path by definition (one call per runtime lifetime); the
    // counters ride in the error so a dead shard still reports its books.
    #[allow(clippy::result_large_err)]
    pub fn try_shutdown(mut self) -> Result<(S, StatsSnapshot), ShardFailure> {
        self.shared.stop.store(true, Ordering::Release);
        let Some(thread) = self.thread.take() else {
            return Err(ShardFailure {
                error: ServiceError::AlreadyShutDown,
                stats: self.shared.stats.snapshot(),
            });
        };
        match thread.join() {
            Ok(svc) => Ok((svc, self.shared.stats.snapshot())),
            Err(_) => {
                self.shared.stats.mark_service_down();
                Err(ShardFailure {
                    error: ServiceError::ServicePanicked,
                    stats: self.shared.stats.snapshot(),
                })
            }
        }
    }
}

/// What [`OffloadRuntime::try_shutdown`] returns for a shard whose
/// service state could not be recovered.
#[derive(Debug, Clone, Copy)]
pub struct ShardFailure {
    /// Why the service state is gone.
    pub error: ServiceError,
    /// The runtime counters as of the failed shutdown (these live outside
    /// the service thread and survive its death).
    pub stats: StatsSnapshot,
}

impl<S: Service> Drop for OffloadRuntime<S> {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.shared.stop.store(true, Ordering::Release);
            let _ = t.join();
        }
    }
}

fn service_loop<S: Service>(
    mut service: S,
    shared: Arc<Shared<S>>,
    trace: Option<Arc<TraceRing>>,
    core: Option<usize>,
    wait: WaitStrategy,
    drain_batch: usize,
) -> S {
    if let Some(c) = core {
        shared.stats.pin_requested.store(true, Ordering::Relaxed);
        // Verified pin: installs the affinity mask and waits (bounded)
        // for the migration to actually land, warning instead of
        // panicking if the scheduler never moves us.
        if pin_current_thread_verified(c).is_ok() {
            shared.stats.record_pin(c);
        }
    }
    // PMU counters opened here (after pinning) count this thread — the
    // service core's whole lifetime, polling overhead included, which is
    // exactly the §2.3 attribution question.
    let mut pmu = shared.telemetry.profiling_enabled().then(|| {
        let mut session = PmuSession::new();
        session.begin();
        session
    });
    service.on_start();

    let mut clients: Vec<ClientChannel<S>> = Vec::new();
    // The idle pacing and phase telemetry both ride the shared WaitState
    // machine — the loop no longer tracks raw iteration counters itself.
    let mut idle = WaitState::new(wait);
    let mut phase = idle.phase();
    loop {
        shared.stats.poll_rounds.fetch_add(1, Ordering::Relaxed);
        let stopping = shared.stop.load(Ordering::Acquire);

        // Wedge fault: the loop is alive (it still honors stop, so
        // shutdown stays orderly) but serves nothing — the scenario the
        // client-side deadlines exist for.
        #[cfg(feature = "faultinject")]
        if !stopping && shared.fault.is_wedged() {
            std::thread::sleep(Duration::from_micros(100));
            continue;
        }

        if shared.has_new.swap(false, Ordering::Acquire) {
            let mut inj = shared.injector.lock().expect("injector poisoned");
            clients.append(&mut *inj);
        }

        let mut work = 0usize;
        let mut occupancy = 0usize;
        for c in &mut clients {
            #[cfg(feature = "faultinject")]
            let serve_now = {
                let mut serve_now = true;
                if let Some(seq) = c.dropping {
                    if c.slot.has_request() && c.slot.publish_seq() == seq {
                        // Still ignoring this exact request; the client's
                        // deadline will retract it. A *new* request (the
                        // sequence moved on) gets a fresh fault decision.
                        serve_now = false;
                    } else {
                        c.dropping = None;
                    }
                }
                if serve_now && c.dropping.is_none() && c.slot.has_request() {
                    match shared.fault.next_action() {
                        FaultAction::Serve => {}
                        FaultAction::Drop => {
                            c.dropping = Some(c.slot.publish_seq());
                            serve_now = false;
                        }
                        FaultAction::Delay(cycles) => {
                            let t0 = cycles_now();
                            while cycles_now().saturating_sub(t0) < cycles {
                                std::hint::spin_loop();
                            }
                        }
                        FaultAction::Kill => {
                            // Panic *inside* the serve, after the request
                            // is claimed: the mid-refill death the client
                            // observes as an abandoned request.
                            let killed = c
                                .slot
                                .serve(|_q| panic!("faultinject: shard killed mid-serve"));
                            if !killed {
                                // The client retracted first; keep the
                                // kill armed for the next request.
                                shared.fault.kill_next_call();
                            }
                            serve_now = false;
                        }
                    }
                }
                serve_now
            };
            #[cfg(not(feature = "faultinject"))]
            let serve_now = true;
            if serve_now && c.slot.serve(|q| service.call(q)) {
                work += 1;
                shared.stats.calls_served.fetch_add(1, Ordering::Relaxed);
            }
            occupancy += c.posts.len();
            let drained = c.posts.drain(drain_batch, |m| service.post(m));
            if drained > 0 {
                work += drained;
                shared
                    .stats
                    .posts_served
                    .fetch_add(drained as u64, Ordering::Relaxed);
                if let Some(ring) = &trace {
                    ring.push(TraceEventKind::Refill, drained as u64, 0);
                }
            }
        }
        // Gauge: total posts that were pending when this round looked.
        shared
            .stats
            .ring_occupancy
            .store(occupancy, Ordering::Relaxed);

        // Retire clients whose handle is gone and whose ring is drained.
        clients.retain(|c| !(c.posts.is_closed() && c.posts.is_empty() && !c.slot.has_request()));

        if work == 0 {
            if stopping {
                // One final injector sweep so a client registered during
                // shutdown is not silently dropped with queued posts.
                if !shared.has_new.load(Ordering::Acquire) {
                    break;
                }
            }
            shared.stats.empty_rounds.fetch_add(1, Ordering::Relaxed);
            service.idle();
            idle.pause();
        } else {
            idle.reset();
        }
        // Sample the wait loop's escalation phase; export transitions.
        let now = idle.phase();
        if now != phase {
            shared.stats.record_wait_phase(now);
            if let Some(ring) = &trace {
                ring.push(TraceEventKind::WaitTransition, phase as u64, now as u64);
            }
            phase = now;
        }
    }
    if let Some(session) = &mut pmu {
        shared.telemetry.record_service_pmu(session.finish());
    }
    service
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A service that doubles on call and sums posts.
    #[derive(Debug)]
    struct Doubler {
        sum: u64,
        idles: u64,
    }

    impl Service for Doubler {
        type Req = u64;
        type Resp = u64;
        type Post = u64;

        fn call(&mut self, req: u64) -> u64 {
            req * 2
        }

        fn post(&mut self, msg: u64) {
            self.sum += msg;
        }

        fn idle(&mut self) {
            self.idles += 1;
        }
    }

    fn doubler() -> Doubler {
        Doubler { sum: 0, idles: 0 }
    }

    #[test]
    fn single_client_roundtrip() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        assert_eq!(c.call(21), 42);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.calls_served, 1);
        assert_eq!(stats.clients_registered, 1);
    }

    #[test]
    fn health_tracks_retire_gate_and_thread_exit() {
        let rt = OffloadRuntime::start(doubler());
        assert_eq!(rt.health(), ShardHealth::Serving);
        assert_eq!(rt.health().label(), "serving");
        rt.begin_retire();
        assert_eq!(rt.health(), ShardHealth::Retiring);
        rt.end_retire();
        assert_eq!(rt.health(), ShardHealth::Serving);
        rt.request_stop();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rt.health() != ShardHealth::Down {
            assert!(std::time::Instant::now() < deadline, "thread never exited");
            std::thread::yield_now();
        }
        assert_eq!(rt.health().label(), "down");
        let _ = rt.try_shutdown();
    }

    #[test]
    fn posts_are_drained_before_shutdown() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        for i in 1..=100 {
            c.post(i);
        }
        drop(c);
        let (svc, stats) = rt.shutdown();
        assert_eq!(svc.sum, 5050);
        assert_eq!(stats.posts_served, 100);
    }

    #[test]
    fn multiple_client_threads() {
        let rt = OffloadRuntime::start(doubler());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let mut c = rt.register_client();
                std::thread::spawn(move || {
                    let mut total = 0u64;
                    for i in 0..50u64 {
                        total += c.call(t * 100 + i);
                        c.post(1);
                    }
                    total
                })
            })
            .collect();
        let grand: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (svc, stats) = rt.shutdown();
        assert_eq!(stats.calls_served, 200);
        assert_eq!(svc.sum, 200);
        // Each call result is 2 * request.
        let expected: u64 = (0..4u64)
            .map(|t| (0..50u64).map(|i| 2 * (t * 100 + i)).sum::<u64>())
            .sum();
        assert_eq!(grand, expected);
    }

    #[test]
    fn idle_hook_runs_when_quiet() {
        let rt = OffloadRuntime::start(doubler());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (svc, stats) = rt.shutdown();
        assert!(svc.idles > 0);
        assert!(stats.idle_fraction() > 0.0);
    }

    #[test]
    fn client_registered_late_is_served() {
        let rt = OffloadRuntime::start(doubler());
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut c = rt.register_client();
        assert_eq!(c.call(5), 10);
        drop(c);
        drop(rt); // Drop-based shutdown must also join cleanly.
    }

    #[test]
    fn stats_visible_while_running() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        c.call(1);
        let s = rt.stats();
        assert_eq!(s.calls_served, 1);
        assert!(s.poll_rounds >= 1);
    }

    #[test]
    fn call_and_post_latencies_are_recorded() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        for i in 0..32 {
            c.call(i);
            c.post(i);
        }
        let m = rt.metrics();
        let calls = m.get_histogram("ngm_call_cycles").expect("call histogram");
        assert_eq!(calls.count(), 32);
        assert!(calls.p50() > 0, "a round trip takes nonzero time");
        assert!(calls.p50() <= calls.p99());
        let posts = m.get_histogram("ngm_post_cycles").expect("post histogram");
        assert_eq!(posts.count(), 32);
        drop(c);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.calls_served, 32);
    }

    #[test]
    fn tracing_captures_posts_refills_and_wait_transitions() {
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                trace_capacity: 256,
                server_wait: Some(WaitStrategy::Backoff),
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        let mut c = rt.register_client();
        for i in 0..10 {
            c.post(i);
        }
        c.call(1);
        // Let the server go quiet long enough to escalate its wait phase.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let trace = rt.telemetry().drain_trace();
        let kinds: std::collections::HashSet<_> = trace.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceEventKind::Post), "client posts traced");
        assert!(kinds.contains(&TraceEventKind::Refill), "drains traced");
        assert!(
            kinds.contains(&TraceEventKind::WaitTransition),
            "idle escalation traced"
        );
        // Service ring is always runtime thread 0; the client is 1.
        assert!(trace
            .events
            .iter()
            .any(|e| e.kind == TraceEventKind::Post && e.thread == 1));
        assert!(trace
            .events
            .iter()
            .any(|e| e.kind == TraceEventKind::WaitTransition && e.thread == 0));
        let stats = rt.stats();
        assert!(stats.wait_transitions > 0);
    }

    #[test]
    fn calls_emit_well_nested_spans_and_exact_phase_partition() {
        use ngm_telemetry::span::{reconstruct, POST_SPAN_BIT};
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                trace_capacity: 1024,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        let mut c = rt.register_client();
        for i in 0..8 {
            c.call(i);
            c.post(i);
        }
        let m = rt.metrics();
        let call_sum = m.get_histogram("ngm_call_cycles").expect("calls").sum();
        let phase_sum: u64 = crate::telemetry::PHASE_NAMES
            .iter()
            .map(|n| {
                m.get_histogram(&format!("ngm_phase_{n}_cycles"))
                    .expect("phase series")
                    .sum()
            })
            .sum();
        assert_eq!(
            phase_sum, call_sum,
            "phases partition the round trip exactly (same endpoint stamps)"
        );
        let spans = reconstruct(&rt.telemetry().drain_trace().events);
        let calls: Vec<_> = spans.iter().filter(|s| s.id & POST_SPAN_BIT == 0).collect();
        let posts: Vec<_> = spans.iter().filter(|s| s.id & POST_SPAN_BIT != 0).collect();
        assert_eq!(calls.len(), 8, "one span per synchronous call");
        assert_eq!(posts.len(), 8, "one span per post");
        for s in &spans {
            assert!(
                s.well_nested(),
                "span {:#x} malformed: {:?}",
                s.id,
                s.phases
            );
            assert!(s.phase_monotonic(), "span {:#x} time-travels", s.id);
        }
        for s in calls {
            assert!(s.completed(), "call spans end Observed");
            assert_eq!(s.phases.len(), 6, "all six call phases present");
        }
        drop(c);
        rt.shutdown();
    }

    #[test]
    fn batched_calls_land_in_refill_histogram() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        for i in 0..8 {
            c.call(i);
        }
        for i in 0..4 {
            assert_eq!(c.call_batched(i), i * 2);
        }
        let m = rt.metrics();
        assert_eq!(
            m.get_histogram("ngm_call_cycles").map(|h| h.count()),
            Some(8),
            "batched round trips must not pollute the per-call population"
        );
        assert_eq!(
            m.get_histogram("ngm_refill_cycles").map(|h| h.count()),
            Some(4)
        );
        drop(c);
        let (_, stats) = rt.shutdown();
        // A batched call is still a served call; the batched counter is a
        // subset, not a separate population.
        assert_eq!(stats.calls_served, 12);
        assert_eq!(stats.batched_calls_served, 4);
    }

    #[test]
    fn profiling_attributes_service_and_client_cores() {
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                profile: true,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        assert!(rt.telemetry().profiling_enabled());
        assert!(
            rt.telemetry().pmu_report().is_none(),
            "no readings until a session retires"
        );
        let mut c = rt.register_client();
        for i in 0..16 {
            c.call(i);
            c.post(i);
        }
        drop(c); // Client reading deposits on handle drop.
        let telemetry = Arc::clone(rt.telemetry());
        let (_, _) = rt.shutdown(); // Service reading deposits at loop exit.
        let rep = telemetry.pmu_report().expect("both columns deposited");
        assert_eq!(rep.cols.len(), 2);
        let rendered = rep.render();
        assert!(
            rendered.contains("service/"),
            "service column labeled with its backend:\n{rendered}"
        );
        assert!(
            rendered.contains("clients(1)/"),
            "client column labeled with its backend:\n{rendered}"
        );
        // Whichever backend ran, both columns measured nonzero cycles
        // or marked the event honestly unmeasurable — never silence.
        for c in &rep.cols {
            match c.reading.get(ngm_pmu::PmuEvent::Cycles) {
                Some(v) => assert!(v > 0, "lifetimes take cycles"),
                None => assert_eq!(c.reading.backend, ngm_pmu::BackendKind::Hardware),
            }
        }
        // And the report flows into the exportable metrics.
        let m = telemetry.metrics(&crate::stats::RuntimeStats::new().snapshot());
        assert!(m.labeled_gauge_count("ngm_pmu_count") > 0);
    }

    #[test]
    fn profiling_off_by_default_deposits_nothing() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        c.call(1);
        drop(c);
        let telemetry = Arc::clone(rt.telemetry());
        rt.shutdown();
        assert!(telemetry.pmu_report().is_none());
    }

    #[test]
    fn tracing_disabled_by_default() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        assert!(c.trace_ring().is_none());
        c.call(1);
        c.post(1);
        assert!(rt.telemetry().drain_trace().events.is_empty());
    }

    #[test]
    fn ring_occupancy_gauge_moves() {
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                drain_batch: 1,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        let mut c = rt.register_client();
        for i in 0..200 {
            c.post(i);
        }
        drop(c);
        let (_, stats) = rt.shutdown();
        // All posts eventually drained; the gauge ends at zero.
        assert_eq!(stats.posts_served, 200);
        assert_eq!(stats.ring_occupancy, 0);
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn deprecated_builder_still_starts_a_runtime() {
        let rt = RuntimeBuilder::new().drain_batch(8).start(doubler());
        let mut c = rt.register_client();
        assert_eq!(c.call(4), 8);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.calls_served, 1);
    }

    #[test]
    fn post_after_shutdown_is_dropped_and_counted() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        c.post(1);
        let stats = Arc::clone(&rt.shared.stats);
        let (_, _) = rt.shutdown();
        // The service (and every ring consumer) is gone: the post must
        // neither panic nor hang.
        assert_eq!(c.try_post(2), Err(ServiceError::ServiceStopped));
        c.post(3); // infallible form also degrades silently
        assert!(!c.is_open());
        let snap = stats.snapshot();
        assert_eq!(snap.posts_dropped, 2);
        assert!(snap.service_down);
    }

    #[test]
    fn try_call_refuses_dead_service() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        assert_eq!(c.try_call(21), Ok(42));
        let (_, _) = rt.shutdown();
        assert_eq!(c.try_call(1), Err(ServiceError::ServiceStopped));
        assert_eq!(c.try_call_batched(1), Err(ServiceError::ServiceStopped));
    }

    #[test]
    fn try_post_reports_full_ring_pressure() {
        // A tiny ring with a slow-to-start drain: at least one retry must
        // surface in the outcome once the ring saturates.
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                ring_capacity: 2,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        let mut c = rt.register_client();
        let mut saw_pressure = false;
        for i in 0..1000 {
            let outcome = c.try_post(i).expect("service alive");
            saw_pressure |= outcome.full_retries > 0;
        }
        drop(c);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.posts_served, 1000);
        if saw_pressure {
            assert!(stats.post_full_retries > 0);
        }
    }

    #[test]
    fn nb_begin_poll_completes_against_live_service() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        assert!(!c.nb_inflight());
        c.nb_begin(21).expect("slot empty");
        assert!(c.nb_inflight());
        // A second submission on the same slot refuses without blocking
        // and hands the request back.
        match c.nb_begin(5) {
            Err((req, ServiceError::WouldBlock)) => assert_eq!(req, 5),
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        let mut spins = 0u64;
        let resp = loop {
            if let Some(r) = c.nb_poll() {
                break r;
            }
            std::hint::spin_loop();
            spins += 1;
            assert!(spins < 1_000_000_000, "service never answered");
        };
        assert_eq!(resp, 42);
        assert!(!c.nb_inflight());
        drop(c);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.calls_served, 1);
        assert_eq!(stats.wouldblocks, 1);
    }

    #[test]
    fn nb_retract_race_has_one_owner_and_slot_reusable() {
        // begin-then-retract against a live service: each submission is
        // either retracted (server never saw it) or served (we must
        // collect it) — never both — and the slot stays reusable.
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        let mut served = 0u64;
        let mut retracted = 0u64;
        for i in 0..2_000u64 {
            c.nb_begin(i).expect("slot reusable every round");
            if c.nb_retract() {
                retracted += 1;
            } else {
                let mut spins = 0u64;
                loop {
                    if let Some(r) = c.nb_poll() {
                        assert_eq!(r, i * 2);
                        break;
                    }
                    std::hint::spin_loop();
                    spins += 1;
                    assert!(spins < 1_000_000_000, "claimed request never served");
                }
                served += 1;
            }
        }
        assert_eq!(served + retracted, 2_000);
        drop(c);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.calls_served, served, "every serve was collected");
    }

    #[test]
    fn try_post_nonblocking_hands_message_back_when_full() {
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                ring_capacity: 2,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        let mut c = rt.register_client();
        let mut bounced = 0u32;
        let mut accepted = 0u64;
        for i in 0..1000u64 {
            match c.try_post_nonblocking(i) {
                Ok(_) => accepted += 1,
                Err(PostError::WouldBlock { msg }) => {
                    assert_eq!(msg, i, "full ring hands the message back");
                    bounced += 1;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        drop(c);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.posts_served, accepted, "accepted posts all drained");
        assert_eq!(u64::from(bounced), stats.wouldblocks);
    }

    #[test]
    fn request_stop_decommissions_without_consuming() {
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        for i in 1..=10 {
            c.post(i);
        }
        rt.request_stop();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while c.is_open() {
            assert!(
                std::time::Instant::now() < deadline,
                "service never stopped"
            );
            std::thread::yield_now();
        }
        // Work already in the ring was drained before the loop exited;
        // work posted after the stop is refused, not lost silently.
        assert_eq!(c.try_post(11), Err(ServiceError::ServiceStopped));
        drop(c);
        let (svc, stats) = rt.try_shutdown().expect("clean exit joins normally");
        assert_eq!(svc.sum, 55);
        assert_eq!(stats.posts_served, 10);
        assert_eq!(stats.posts_dropped, 1);
    }

    #[test]
    fn try_shutdown_reports_service_panic_with_stats() {
        #[derive(Debug)]
        struct Exploder;
        impl Service for Exploder {
            type Req = ();
            type Resp = ();
            type Post = ();
            fn call(&mut self, _req: ()) {}
            fn post(&mut self, _msg: ()) {
                panic!("boom");
            }
        }
        let rt = OffloadRuntime::start(Exploder);
        let mut c = rt.register_client();
        // The service panics draining this post; posting is async, so
        // the client is not stuck waiting on a reply that never comes.
        c.post(());
        // Wait for the death to become observable before shutting down.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while c.is_open() {
            assert!(std::time::Instant::now() < deadline, "service never died");
            std::thread::yield_now();
        }
        drop(c);
        let failure = rt.try_shutdown().expect_err("service panicked");
        assert_eq!(failure.error, ServiceError::ServicePanicked);
        assert!(failure.stats.service_down);
    }

    /// A service that stalls inside `call` when asked to (req == 1),
    /// holding the service thread hostage until released — the
    /// wedged-but-alive scenario deadlines exist for.
    struct Staller {
        entered: Arc<AtomicBool>,
        release: Arc<AtomicBool>,
    }

    impl Service for Staller {
        type Req = u64;
        type Resp = u64;
        type Post = u64;

        fn call(&mut self, req: u64) -> u64 {
            if req == 1 {
                self.entered.store(true, Ordering::Release);
                while !self.release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            req
        }

        fn post(&mut self, _msg: u64) {}
    }

    fn stalled_runtime(
        deadline: Duration,
        ring_capacity: usize,
    ) -> (OffloadRuntime<Staller>, Arc<AtomicBool>, Arc<AtomicBool>) {
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let rt = OffloadRuntime::try_start(
            Staller {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            },
            RuntimeConfig {
                deadline: Some(deadline),
                ring_capacity,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        (rt, entered, release)
    }

    #[test]
    fn try_call_deadlines_against_stalled_service_and_recovers() {
        let (rt, entered, release) = stalled_runtime(Duration::from_millis(10), 1024);
        let mut stall_client = rt.register_client();
        let mut c = rt.register_client();
        let staller = std::thread::spawn(move || {
            let r = stall_client.try_call(1);
            (r, stall_client)
        });
        while !entered.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // The service thread is hostage inside another client's call: our
        // request is never claimed, so the deadline fires and retracts.
        let start = std::time::Instant::now();
        let r = c.try_call(2);
        assert!(
            matches!(r, Err(ServiceError::Deadline { .. })),
            "expected deadline, got {r:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "deadline bounded the wait"
        );
        release.store(true, Ordering::Release);
        let (stalled_result, _stall_client) = staller.join().unwrap();
        // The hostage call either completed late (within its grace
        // period) or was itself deadline'd; it must not hang.
        assert!(
            matches!(stalled_result, Ok(1) | Err(ServiceError::Deadline { .. })),
            "unexpected stalled-call outcome {stalled_result:?}"
        );
        // The retracted slot is reusable: the same handle recovers.
        assert_eq!(c.try_call(3), Ok(3));
        let stats = rt.stats();
        assert!(stats.deadlines >= 1, "deadline expiries counted");
        drop(c);
        drop(rt);
    }

    #[test]
    fn try_post_deadline_hands_message_back_when_ring_stays_full() {
        let (rt, entered, release) = stalled_runtime(Duration::from_millis(10), 2);
        let mut stall_client = rt.register_client();
        let mut c = rt.register_client();
        let staller = std::thread::spawn(move || {
            let _ = stall_client.try_call(1);
            stall_client
        });
        while !entered.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // The service is hostage: nothing drains. Fill the ring, then
        // prove the overflow post comes back instead of spinning forever.
        c.try_post_deadline(10).expect("ring has room");
        c.try_post_deadline(11).expect("ring has room");
        match c.try_post_deadline(12) {
            Err(PostError::Deadline { msg, waited, .. }) => {
                assert_eq!(msg, 12, "unsent message handed back");
                assert!(waited >= Duration::from_millis(10));
            }
            other => panic!("expected deadline with message, got {other:?}"),
        }
        let stats = rt.stats();
        assert!(stats.deadlines >= 1);
        assert!(stats.retry_total >= 1, "full-ring retries counted");
        release.store(true, Ordering::Release);
        let _ = staller.join().unwrap();
        drop(c);
        drop(rt);
    }

    #[test]
    fn no_deadline_config_restores_unbounded_calls() {
        let rt = OffloadRuntime::try_start(
            doubler(),
            RuntimeConfig {
                deadline: None,
                ..RuntimeConfig::new()
            },
        )
        .unwrap();
        let mut c = rt.register_client();
        assert_eq!(c.try_call(21), Ok(42));
        assert_eq!(c.try_call_batched(3), Ok(6));
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.deadlines, 0);
    }

    #[test]
    fn deadline_calls_still_record_latency_histograms() {
        // The deadline path must not lose the telemetry the ablations
        // depend on: successful bounded calls land in the same
        // histograms as unbounded ones.
        let rt = OffloadRuntime::start(doubler());
        let mut c = rt.register_client();
        for i in 0..16 {
            assert_eq!(c.try_call(i), Ok(i * 2));
        }
        for i in 0..4 {
            assert_eq!(c.try_call_batched(i), Ok(i * 2));
        }
        let m = rt.metrics();
        assert_eq!(
            m.get_histogram("ngm_call_cycles").map(|h| h.count()),
            Some(16)
        );
        assert_eq!(
            m.get_histogram("ngm_refill_cycles").map(|h| h.count()),
            Some(4)
        );
        drop(c);
        let (_, stats) = rt.shutdown();
        assert_eq!(stats.batched_calls_served, 4);
    }

    #[test]
    fn is_finished_flags_unclean_death() {
        #[derive(Debug)]
        struct QuitEarly;
        impl Service for QuitEarly {
            type Req = ();
            type Resp = ();
            type Post = ();
            fn call(&mut self, _req: ()) {}
            fn post(&mut self, _msg: ()) {}
            fn idle(&mut self) {
                panic!("service dies on first idle round");
            }
        }
        let rt = OffloadRuntime::start(QuitEarly);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !rt.is_finished() {
            assert!(std::time::Instant::now() < deadline, "service never died");
            std::thread::yield_now();
        }
        assert!(rt.stats().service_down);
        let _ = rt.try_shutdown().expect_err("thread panicked");
    }

    /// Deterministic fault-injection tests: one per fault kind. None of
    /// them relies on a watchdog — each asserts a typed error within the
    /// configured deadline, or a recovery after the fault clears.
    #[cfg(feature = "faultinject")]
    mod faults {
        use super::*;

        fn fast_deadline_runtime() -> OffloadRuntime<Doubler> {
            OffloadRuntime::try_start(
                doubler(),
                RuntimeConfig {
                    deadline: Some(Duration::from_millis(20)),
                    ..RuntimeConfig::new()
                },
            )
            .unwrap()
        }

        #[test]
        fn wedged_shard_returns_deadline_then_recovers() {
            let rt = fast_deadline_runtime();
            let mut c = rt.register_client();
            assert_eq!(c.try_call(5), Ok(10), "healthy before the fault");
            rt.fault_state().set_wedged(true);
            let start = std::time::Instant::now();
            let r = c.try_call(6);
            assert!(
                matches!(r, Err(ServiceError::Deadline { shard: 0, .. })),
                "wedged shard must deadline, got {r:?}"
            );
            assert!(start.elapsed() < Duration::from_secs(10));
            rt.fault_state().set_wedged(false);
            assert_eq!(c.try_call(7), Ok(14), "retracted slot reusable");
            let (_, stats) = {
                drop(c);
                rt.shutdown()
            };
            assert_eq!(stats.deadlines, 1);
        }

        #[test]
        fn wedged_shard_bounds_posts_too() {
            let rt = OffloadRuntime::try_start(
                doubler(),
                RuntimeConfig {
                    deadline: Some(Duration::from_millis(20)),
                    ring_capacity: 2,
                    ..RuntimeConfig::new()
                },
            )
            .unwrap();
            let mut c = rt.register_client();
            rt.fault_state().set_wedged(true);
            c.try_post_deadline(1).expect("ring has room");
            c.try_post_deadline(2).expect("ring has room");
            match c.try_post_deadline(3) {
                Err(PostError::Deadline { msg: 3, .. }) => {}
                other => panic!("expected bounded full-ring failure, got {other:?}"),
            }
            rt.fault_state().set_wedged(false);
            c.try_post_deadline(3).expect("ring drains after unwedge");
            drop(c);
            let (svc, stats) = rt.shutdown();
            assert_eq!(svc.sum, 6, "all delivered posts drained");
            assert_eq!(stats.posts_served, 3);
        }

        #[test]
        fn dropped_response_is_retracted_and_next_call_recovers() {
            let rt = fast_deadline_runtime();
            let mut c = rt.register_client();
            rt.fault_state().set_drop_every(1);
            let r = c.try_call(1);
            assert!(
                matches!(r, Err(ServiceError::Deadline { .. })),
                "dropped response must deadline, got {r:?}"
            );
            rt.fault_state().set_drop_every(0);
            assert_eq!(c.try_call(2), Ok(4));
            drop(c);
            let (_, stats) = rt.shutdown();
            assert_eq!(stats.deadlines, 1);
            assert_eq!(stats.calls_served, 1, "the dropped call was never served");
        }

        #[test]
        fn delay_below_budget_is_recoverable_latency() {
            let rt = OffloadRuntime::try_start(
                doubler(),
                RuntimeConfig {
                    deadline: Some(Duration::from_secs(5)),
                    ..RuntimeConfig::new()
                },
            )
            .unwrap();
            let mut c = rt.register_client();
            rt.fault_state().set_delay_cycles(10_000);
            assert_eq!(c.try_call(4), Ok(8), "delayed but served");
            rt.fault_state().set_delay_cycles(0);
            drop(c);
            let (_, stats) = rt.shutdown();
            assert_eq!(stats.calls_served, 1);
            assert_eq!(stats.deadlines, 0);
        }

        #[test]
        fn kill_mid_serve_abandons_poisons_and_reports_panic() {
            let rt = fast_deadline_runtime();
            let mut c = rt.register_client();
            rt.fault_state().kill_next_call();
            let start = std::time::Instant::now();
            let r = c.try_call(1);
            assert!(
                matches!(r, Err(ServiceError::Deadline { .. })),
                "killed mid-serve must surface as an abandoned deadline, got {r:?}"
            );
            // Budget + grace, with generous slack for CI.
            assert!(start.elapsed() < Duration::from_secs(10));
            // The slot is unrecoverable: the handle fails fast forever.
            assert_eq!(c.try_call(2), Err(ServiceError::ServiceStopped));
            drop(c);
            let failure = rt.try_shutdown().expect_err("service thread panicked");
            assert_eq!(failure.error, ServiceError::ServicePanicked);
            assert!(failure.stats.service_down);
        }
    }
}
