//! Wait policies for the client and service sides of the offload channel.
//!
//! The paper's prototype busy-spins both sides: the client spins on
//! `malloc_done`, the service core spins polling `malloc_start`. Spinning
//! minimizes request latency (the paper's whole argument hinges on keeping
//! the round trip near the raw atomic cost) but burns a core; yielding and
//! parking trade latency for efficiency. Ablation A in the reproduction
//! sweeps these policies.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// The observable state of a wait loop: which escalation stage a thread
/// is in after a given number of fruitless probes. Telemetry samples
/// these (the service loop exports phase-transition counts), so the
/// mapping from iteration count to phase is public API, not an
/// implementation detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum WaitPhase {
    /// Busy-spinning (or actively finding work).
    #[default]
    Spin = 0,
    /// Interleaving `yield_now`.
    Yield = 1,
    /// Sleeping in escalating intervals.
    Sleep = 2,
}

impl WaitPhase {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            WaitPhase::Spin => "spin",
            WaitPhase::Yield => "yield",
            WaitPhase::Sleep => "sleep",
        }
    }

    /// Inverse of `as u32` casts used when a phase travels through an
    /// atomic; unknown values collapse to `Spin`.
    #[must_use]
    pub const fn from_u32(v: u32) -> Self {
        match v {
            1 => WaitPhase::Yield,
            2 => WaitPhase::Sleep,
            _ => WaitPhase::Spin,
        }
    }
}

/// How a thread waits for a condition that another core will signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Busy-spin with a CPU relax hint. Lowest latency, one core burned.
    Spin,
    /// Spin `spins` times, then interleave `std::thread::yield_now`.
    SpinYield {
        /// Number of pure spins before the first yield.
        spins: u32,
    },
    /// Spin briefly, then sleep in escalating intervals. Highest latency,
    /// friendliest to oversubscribed machines (like this 1-vCPU box).
    Backoff,
}

impl Default for WaitStrategy {
    fn default() -> Self {
        // On a machine with fewer than two cores the paper's busy-spin
        // protocol would deadlock-by-starvation: the spinner can occupy the
        // only core the producer needs. Default accordingly.
        if crate::pin::available_cores() >= 2 {
            WaitStrategy::SpinYield { spins: 64 }
        } else {
            WaitStrategy::Backoff
        }
    }
}

impl WaitStrategy {
    /// Spins until `cond` returns `true`, using this policy between probes.
    #[inline]
    pub fn wait_until(self, mut cond: impl FnMut() -> bool) {
        let mut iters: u32 = 0;
        while !cond() {
            self.pause(&mut iters);
        }
    }

    /// The escalation phase this strategy is in after `iters` fruitless
    /// probes. `pause` acts according to `phase(iters + 1)`; the split
    /// lets the service loop observe (and export) phase transitions
    /// without duplicating the thresholds.
    #[inline]
    #[must_use]
    pub fn phase(self, iters: u32) -> WaitPhase {
        match self {
            WaitStrategy::Spin => WaitPhase::Spin,
            WaitStrategy::SpinYield { spins } => {
                if iters < spins {
                    WaitPhase::Spin
                } else {
                    WaitPhase::Yield
                }
            }
            WaitStrategy::Backoff => {
                if iters < 16 {
                    WaitPhase::Spin
                } else if iters < 64 {
                    WaitPhase::Yield
                } else {
                    WaitPhase::Sleep
                }
            }
        }
    }

    /// One backoff step; `iters` is the caller's loop counter.
    #[inline]
    pub fn pause(self, iters: &mut u32) {
        *iters = iters.saturating_add(1);
        match self.phase(*iters) {
            WaitPhase::Spin => std::hint::spin_loop(),
            WaitPhase::Yield => std::thread::yield_now(),
            WaitPhase::Sleep => {
                // Only Backoff reaches here. Cap the sleep low: on
                // oversubscribed machines the round-trip latency is
                // bounded by this interval, and a 32 us ceiling keeps the
                // allocator usable even when client and service share one
                // core.
                let exp = (*iters - 64).min(5);
                std::thread::sleep(Duration::from_micros(1 << exp));
            }
        }
    }

    /// Waits until the atomic `flag` holds `value` (acquire ordering).
    #[inline]
    pub fn wait_for_value(self, flag: &AtomicU32, value: u32) {
        self.wait_until(|| flag.load(Ordering::Acquire) == value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn wait_until_returns_when_condition_true() {
        let mut n = 0;
        WaitStrategy::Spin.wait_until(|| {
            n += 1;
            n == 10
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn wait_for_value_sees_cross_thread_store() {
        let flag = Arc::new(AtomicU32::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let d2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            WaitStrategy::Backoff.wait_for_value(&f2, 7);
            d2.store(true, Ordering::Release);
        });
        std::thread::sleep(Duration::from_millis(5));
        assert!(!done.load(Ordering::Acquire));
        flag.store(7, Ordering::Release);
        h.join().unwrap();
        assert!(done.load(Ordering::Acquire));
    }

    #[test]
    fn backoff_escalates_without_panicking() {
        let mut iters = 0;
        for _ in 0..70 {
            WaitStrategy::Backoff.pause(&mut iters);
        }
        assert_eq!(iters, 70);
    }

    #[test]
    fn phases_escalate_at_documented_thresholds() {
        let b = WaitStrategy::Backoff;
        assert_eq!(b.phase(0), WaitPhase::Spin);
        assert_eq!(b.phase(15), WaitPhase::Spin);
        assert_eq!(b.phase(16), WaitPhase::Yield);
        assert_eq!(b.phase(63), WaitPhase::Yield);
        assert_eq!(b.phase(64), WaitPhase::Sleep);

        let sy = WaitStrategy::SpinYield { spins: 8 };
        assert_eq!(sy.phase(7), WaitPhase::Spin);
        assert_eq!(sy.phase(8), WaitPhase::Yield);
        assert_eq!(sy.phase(u32::MAX), WaitPhase::Yield);

        assert_eq!(WaitStrategy::Spin.phase(u32::MAX), WaitPhase::Spin);
    }

    #[test]
    fn phase_u32_roundtrip() {
        for p in [WaitPhase::Spin, WaitPhase::Yield, WaitPhase::Sleep] {
            assert_eq!(WaitPhase::from_u32(p as u32), p);
        }
        assert_eq!(WaitPhase::from_u32(99), WaitPhase::Spin);
    }

    #[test]
    fn default_strategy_matches_core_count() {
        let s = WaitStrategy::default();
        if crate::pin::available_cores() >= 2 {
            assert!(matches!(s, WaitStrategy::SpinYield { .. }));
        } else {
            assert_eq!(s, WaitStrategy::Backoff);
        }
    }
}
