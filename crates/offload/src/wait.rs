//! Wait policies for the client and service sides of the offload channel.
//!
//! The paper's prototype busy-spins both sides: the client spins on
//! `malloc_done`, the service core spins polling `malloc_start`. Spinning
//! minimizes request latency (the paper's whole argument hinges on keeping
//! the round trip near the raw atomic cost) but burns a core; yielding and
//! parking trade latency for efficiency. Ablation A in the reproduction
//! sweeps these policies.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// The observable state of a wait loop: which escalation stage a thread
/// is in after a given number of fruitless probes. Telemetry samples
/// these (the service loop exports phase-transition counts), so the
/// mapping from iteration count to phase is public API, not an
/// implementation detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum WaitPhase {
    /// Busy-spinning (or actively finding work).
    #[default]
    Spin = 0,
    /// Interleaving `yield_now`.
    Yield = 1,
    /// Sleeping in escalating intervals.
    Sleep = 2,
    /// The wait's deadline budget is exhausted; the caller must stop
    /// waiting and surface a typed error instead of blocking further.
    Timeout = 3,
}

impl WaitPhase {
    /// Stable lowercase label used by exporters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            WaitPhase::Spin => "spin",
            WaitPhase::Yield => "yield",
            WaitPhase::Sleep => "sleep",
            WaitPhase::Timeout => "timeout",
        }
    }

    /// Inverse of `as u32` casts used when a phase travels through an
    /// atomic; unknown values collapse to `Spin`.
    #[must_use]
    pub const fn from_u32(v: u32) -> Self {
        match v {
            1 => WaitPhase::Yield,
            2 => WaitPhase::Sleep,
            3 => WaitPhase::Timeout,
            _ => WaitPhase::Spin,
        }
    }
}

/// How a thread waits for a condition that another core will signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Busy-spin with a CPU relax hint. Lowest latency, one core burned.
    Spin,
    /// Spin `spins` times, then interleave `std::thread::yield_now`.
    SpinYield {
        /// Number of pure spins before the first yield.
        spins: u32,
    },
    /// Spin briefly, then sleep in escalating intervals. Highest latency,
    /// friendliest to oversubscribed machines (like this 1-vCPU box).
    Backoff,
}

impl Default for WaitStrategy {
    fn default() -> Self {
        // On a machine with fewer than two cores the paper's busy-spin
        // protocol would deadlock-by-starvation: the spinner can occupy the
        // only core the producer needs. Default accordingly.
        if crate::pin::available_cores() >= 2 {
            WaitStrategy::SpinYield { spins: 64 }
        } else {
            WaitStrategy::Backoff
        }
    }
}

impl WaitStrategy {
    /// Spins until `cond` returns `true`, using this policy between probes.
    #[inline]
    pub fn wait_until(self, mut cond: impl FnMut() -> bool) {
        let mut iters: u32 = 0;
        while !cond() {
            self.pause(&mut iters);
        }
    }

    /// The escalation phase this strategy is in after `iters` fruitless
    /// probes. `pause` acts according to `phase(iters + 1)`; the split
    /// lets the service loop observe (and export) phase transitions
    /// without duplicating the thresholds.
    #[inline]
    #[must_use]
    pub fn phase(self, iters: u32) -> WaitPhase {
        match self {
            WaitStrategy::Spin => WaitPhase::Spin,
            WaitStrategy::SpinYield { spins } => {
                if iters < spins {
                    WaitPhase::Spin
                } else {
                    WaitPhase::Yield
                }
            }
            WaitStrategy::Backoff => {
                if iters < 16 {
                    WaitPhase::Spin
                } else if iters < 64 {
                    WaitPhase::Yield
                } else {
                    WaitPhase::Sleep
                }
            }
        }
    }

    /// One backoff step; `iters` is the caller's loop counter.
    #[inline]
    pub fn pause(self, iters: &mut u32) {
        *iters = iters.saturating_add(1);
        match self.phase(*iters) {
            WaitPhase::Spin => std::hint::spin_loop(),
            WaitPhase::Yield => std::thread::yield_now(),
            WaitPhase::Sleep => {
                // Only Backoff reaches here. Cap the sleep low: on
                // oversubscribed machines the round-trip latency is
                // bounded by this interval, and a 32 us ceiling keeps the
                // allocator usable even when client and service share one
                // core.
                let exp = (*iters - 64).min(5);
                std::thread::sleep(Duration::from_micros(1 << exp));
            }
            // A bare strategy has no budget, so `phase` never reports
            // Timeout; only `WaitState` (which owns a budget) does.
            WaitPhase::Timeout => unreachable!("WaitStrategy::phase never times out"),
        }
    }

    /// Waits until the atomic `flag` holds `value` (acquire ordering).
    #[inline]
    pub fn wait_for_value(self, flag: &AtomicU32, value: u32) {
        self.wait_until(|| flag.load(Ordering::Acquire) == value);
    }
}

/// The shared wait-loop state machine: strategy + iteration counter +
/// optional deadline budget, in one place.
///
/// Every blocking loop in the offload layer (slot waits, ring push
/// retries, the service poll loop) routes through one of these instead of
/// hand-rolling `yield_now()` loops, so (a) the configured
/// [`WaitStrategy`] is what actually runs — Ablation A measures the
/// policy it selected — and (b) every wait escalates
/// spin → yield → sleep → **timeout** rather than hanging forever.
///
/// The deadline check is kept off the hot path: `Instant::now()` is only
/// consulted once the wait has escalated past the spin phase, or every
/// 64th probe while still spinning.
#[derive(Debug, Clone, Copy)]
pub struct WaitState {
    strategy: WaitStrategy,
    budget: Option<Duration>,
    iters: u32,
    started: Option<Instant>,
    expired: bool,
}

impl WaitState {
    /// A wait loop with no deadline: pure strategy escalation.
    #[must_use]
    pub fn new(strategy: WaitStrategy) -> Self {
        Self::with_budget(strategy, None)
    }

    /// A wait loop that reports timeout once `budget` has elapsed.
    /// `None` means unbounded (identical to [`WaitState::new`]).
    #[must_use]
    pub fn with_budget(strategy: WaitStrategy, budget: Option<Duration>) -> Self {
        WaitState {
            strategy,
            budget,
            iters: 0,
            started: None,
            expired: false,
        }
    }

    /// Fruitless probes so far.
    #[must_use]
    pub fn iters(&self) -> u32 {
        self.iters
    }

    /// The escalation phase the *next* probe will wait in;
    /// [`WaitPhase::Timeout`] once the budget is exhausted.
    #[must_use]
    pub fn phase(&self) -> WaitPhase {
        if self.expired {
            WaitPhase::Timeout
        } else {
            self.strategy.phase(self.iters)
        }
    }

    /// How long this wait has been going (zero before the first pause).
    #[must_use]
    pub fn waited(&self) -> Duration {
        self.started.map_or(Duration::ZERO, |t| t.elapsed())
    }

    /// One backoff step. Returns `true` if the caller should keep
    /// waiting, `false` if the deadline budget is exhausted (in which
    /// case no pause was taken and the caller must bail out with a typed
    /// error). Without a budget this always returns `true`.
    #[inline]
    pub fn pause(&mut self) -> bool {
        if let Some(budget) = self.budget {
            let started = *self.started.get_or_insert_with(Instant::now);
            let check =
                self.iters & 63 == 0 || !matches!(self.strategy.phase(self.iters), WaitPhase::Spin);
            if check && started.elapsed() >= budget {
                self.expired = true;
                return false;
            }
        }
        self.strategy.pause(&mut self.iters);
        true
    }

    /// Rearms the machine after progress was made: the iteration counter,
    /// deadline clock, and expired flag all reset.
    #[inline]
    pub fn reset(&mut self) {
        self.iters = 0;
        self.started = None;
        self.expired = false;
    }

    /// Waits until `cond` holds or the budget expires. Returns `true` if
    /// the condition was met, `false` on timeout.
    #[inline]
    pub fn wait_until(&mut self, mut cond: impl FnMut() -> bool) -> bool {
        loop {
            if cond() {
                return true;
            }
            if !self.pause() {
                return false;
            }
        }
    }

    /// Waits until the atomic `flag` holds `value` (acquire ordering) or
    /// the budget expires. Returns `true` if the value was observed.
    #[inline]
    pub fn wait_for_value(&mut self, flag: &AtomicU32, value: u32) -> bool {
        self.wait_until(|| flag.load(Ordering::Acquire) == value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn wait_until_returns_when_condition_true() {
        let mut n = 0;
        WaitStrategy::Spin.wait_until(|| {
            n += 1;
            n == 10
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn wait_for_value_sees_cross_thread_store() {
        let flag = Arc::new(AtomicU32::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let d2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            WaitStrategy::Backoff.wait_for_value(&f2, 7);
            d2.store(true, Ordering::Release);
        });
        std::thread::sleep(Duration::from_millis(5));
        assert!(!done.load(Ordering::Acquire));
        flag.store(7, Ordering::Release);
        h.join().unwrap();
        assert!(done.load(Ordering::Acquire));
    }

    #[test]
    fn backoff_escalates_without_panicking() {
        let mut iters = 0;
        for _ in 0..70 {
            WaitStrategy::Backoff.pause(&mut iters);
        }
        assert_eq!(iters, 70);
    }

    #[test]
    fn phases_escalate_at_documented_thresholds() {
        let b = WaitStrategy::Backoff;
        assert_eq!(b.phase(0), WaitPhase::Spin);
        assert_eq!(b.phase(15), WaitPhase::Spin);
        assert_eq!(b.phase(16), WaitPhase::Yield);
        assert_eq!(b.phase(63), WaitPhase::Yield);
        assert_eq!(b.phase(64), WaitPhase::Sleep);

        let sy = WaitStrategy::SpinYield { spins: 8 };
        assert_eq!(sy.phase(7), WaitPhase::Spin);
        assert_eq!(sy.phase(8), WaitPhase::Yield);
        assert_eq!(sy.phase(u32::MAX), WaitPhase::Yield);

        assert_eq!(WaitStrategy::Spin.phase(u32::MAX), WaitPhase::Spin);
    }

    #[test]
    fn phase_u32_roundtrip() {
        for p in [
            WaitPhase::Spin,
            WaitPhase::Yield,
            WaitPhase::Sleep,
            WaitPhase::Timeout,
        ] {
            assert_eq!(WaitPhase::from_u32(p as u32), p);
        }
        assert_eq!(WaitPhase::from_u32(99), WaitPhase::Spin);
    }

    #[test]
    fn wait_state_without_budget_never_times_out() {
        let mut w = WaitState::new(WaitStrategy::Spin);
        for _ in 0..10_000 {
            assert!(w.pause());
        }
        assert_eq!(w.phase(), WaitPhase::Spin);
    }

    #[test]
    fn wait_state_reports_timeout_after_budget() {
        let mut w = WaitState::with_budget(WaitStrategy::Backoff, Some(Duration::from_millis(2)));
        let ok = w.wait_until(|| false);
        assert!(!ok, "condition never holds, budget must expire");
        assert_eq!(w.phase(), WaitPhase::Timeout);
        assert!(w.waited() >= Duration::from_millis(2));
    }

    #[test]
    fn wait_state_succeeds_before_budget() {
        let mut w = WaitState::with_budget(WaitStrategy::Spin, Some(Duration::from_secs(5)));
        let mut n = 0;
        assert!(w.wait_until(|| {
            n += 1;
            n == 10
        }));
        assert_eq!(n, 10);
        assert_eq!(w.iters(), 9);
    }

    #[test]
    fn wait_state_reset_rearms_the_deadline() {
        let mut w = WaitState::with_budget(WaitStrategy::Spin, Some(Duration::from_millis(1)));
        assert!(!w.wait_until(|| false));
        w.reset();
        assert_eq!(w.phase(), WaitPhase::Spin);
        assert_eq!(w.iters(), 0);
        assert!(w.pause(), "fresh budget after reset");
    }

    #[test]
    fn wait_state_for_value_times_out_on_absent_store() {
        let flag = AtomicU32::new(0);
        let mut w = WaitState::with_budget(
            WaitStrategy::SpinYield { spins: 4 },
            Some(Duration::from_millis(2)),
        );
        assert!(!w.wait_for_value(&flag, 1));
        flag.store(1, Ordering::Release);
        w.reset();
        assert!(w.wait_for_value(&flag, 1));
    }

    #[test]
    fn default_strategy_matches_core_count() {
        let s = WaitStrategy::default();
        if crate::pin::available_cores() >= 2 {
            assert!(matches!(s, WaitStrategy::SpinYield { .. }));
        } else {
            assert_eq!(s, WaitStrategy::Backoff);
        }
    }
}
