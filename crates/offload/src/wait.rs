//! Wait policies for the client and service sides of the offload channel.
//!
//! The paper's prototype busy-spins both sides: the client spins on
//! `malloc_done`, the service core spins polling `malloc_start`. Spinning
//! minimizes request latency (the paper's whole argument hinges on keeping
//! the round trip near the raw atomic cost) but burns a core; yielding and
//! parking trade latency for efficiency. Ablation A in the reproduction
//! sweeps these policies.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// How a thread waits for a condition that another core will signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Busy-spin with a CPU relax hint. Lowest latency, one core burned.
    Spin,
    /// Spin `spins` times, then interleave `std::thread::yield_now`.
    SpinYield {
        /// Number of pure spins before the first yield.
        spins: u32,
    },
    /// Spin briefly, then sleep in escalating intervals. Highest latency,
    /// friendliest to oversubscribed machines (like this 1-vCPU box).
    Backoff,
}

impl Default for WaitStrategy {
    fn default() -> Self {
        // On a machine with fewer than two cores the paper's busy-spin
        // protocol would deadlock-by-starvation: the spinner can occupy the
        // only core the producer needs. Default accordingly.
        if crate::pin::available_cores() >= 2 {
            WaitStrategy::SpinYield { spins: 64 }
        } else {
            WaitStrategy::Backoff
        }
    }
}

impl WaitStrategy {
    /// Spins until `cond` returns `true`, using this policy between probes.
    #[inline]
    pub fn wait_until(self, mut cond: impl FnMut() -> bool) {
        let mut iters: u32 = 0;
        while !cond() {
            self.pause(&mut iters);
        }
    }

    /// One backoff step; `iters` is the caller's loop counter.
    #[inline]
    pub fn pause(self, iters: &mut u32) {
        *iters = iters.saturating_add(1);
        match self {
            WaitStrategy::Spin => std::hint::spin_loop(),
            WaitStrategy::SpinYield { spins } => {
                if *iters < spins {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            WaitStrategy::Backoff => {
                if *iters < 16 {
                    std::hint::spin_loop();
                } else if *iters < 64 {
                    std::thread::yield_now();
                } else {
                    // Cap the sleep low: on oversubscribed machines the
                    // round-trip latency is bounded by this interval, and
                    // a 32 us ceiling keeps the allocator usable even when
                    // client and service share one core.
                    let exp = (*iters - 64).min(5);
                    std::thread::sleep(Duration::from_micros(1 << exp));
                }
            }
        }
    }

    /// Waits until the atomic `flag` holds `value` (acquire ordering).
    #[inline]
    pub fn wait_for_value(self, flag: &AtomicU32, value: u32) {
        self.wait_until(|| flag.load(Ordering::Acquire) == value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn wait_until_returns_when_condition_true() {
        let mut n = 0;
        WaitStrategy::Spin.wait_until(|| {
            n += 1;
            n == 10
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn wait_for_value_sees_cross_thread_store() {
        let flag = Arc::new(AtomicU32::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let d2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            WaitStrategy::Backoff.wait_for_value(&f2, 7);
            d2.store(true, Ordering::Release);
        });
        std::thread::sleep(Duration::from_millis(5));
        assert!(!done.load(Ordering::Acquire));
        flag.store(7, Ordering::Release);
        h.join().unwrap();
        assert!(done.load(Ordering::Acquire));
    }

    #[test]
    fn backoff_escalates_without_panicking() {
        let mut iters = 0;
        for _ in 0..70 {
            WaitStrategy::Backoff.pause(&mut iters);
        }
        assert_eq!(iters, 70);
    }

    #[test]
    fn default_strategy_matches_core_count() {
        let s = WaitStrategy::default();
        if crate::pin::available_cores() >= 2 {
            assert!(matches!(s, WaitStrategy::SpinYield { .. }));
        } else {
            assert_eq!(s, WaitStrategy::Backoff);
        }
    }
}
