//! Per-runtime telemetry: request-latency histograms, trace rings, and
//! the metrics snapshot assembly.
//!
//! One [`RuntimeTelemetry`] is shared (via `Arc`) between the service
//! loop and every [`crate::ClientHandle`]. The client fast path touches
//! it exactly once per request — a histogram record, which is one relaxed
//! bucket increment plus one relaxed sum increment — keeping measurement
//! overhead far below the round-trip being measured (§4.1's `T_comm`).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use ngm_pmu::{PmuReading, PmuReport};
use ngm_telemetry::export::MetricsSnapshot;
use ngm_telemetry::hist::LatencyHistogram;
use ngm_telemetry::trace::{TraceDrain, TraceRing};

use crate::stats::StatsSnapshot;

/// Number of round-trip phases tracked per call (see
/// [`RuntimeTelemetry::phase_cycles`]).
pub const PHASES: usize = 5;

/// Stable phase names, lifecycle order; index-aligned with
/// [`RuntimeTelemetry::phase_cycles`] and the exported
/// `ngm_phase_{name}_cycles` series.
pub const PHASE_NAMES: [&str; PHASES] = ["queue", "claim", "serve", "publish", "observe"];

/// PMU readings attributed by core role (§2.3: the service core takes
/// the allocator's misses so the app cores don't).
#[derive(Debug, Default)]
struct PmuStore {
    /// The service loop's whole-lifetime reading.
    service: Option<PmuReading>,
    /// All retired client handles' readings, merged.
    clients: Option<PmuReading>,
    client_count: u32,
}

/// Telemetry shared by one offload runtime and all its clients.
pub struct RuntimeTelemetry {
    /// Round-trip latency of synchronous calls (allocations in the malloc
    /// deployment), in [`ngm_telemetry::clock::cycles_now`] units.
    pub call_cycles: LatencyHistogram,
    /// Latency of fire-and-forget posts (asynchronous frees): time to
    /// place the message in the ring, including full-ring retries.
    pub post_cycles: LatencyHistogram,
    /// Round-trip latency of *batched* synchronous calls (magazine
    /// refills). Kept separate from `call_cycles` so the amortized
    /// per-item cost of the batched handshake can be compared against the
    /// per-call round trip without mixing the two populations.
    pub refill_cycles: LatencyHistogram,
    /// Per-phase breakdowns of the synchronous round trip, in lifecycle
    /// order: queue (enqueue → ring-resident), claim (ring-resident →
    /// claimed), serve (claimed → served), publish (served → response
    /// published), observe (published → client observed). The five are
    /// derived from the same two endpoint timestamps as `call_cycles`,
    /// so per-request they sum to exactly the recorded round trip.
    pub phase_cycles: [LatencyHistogram; PHASES],
    /// Submission-queue depth (in-flight entries) sampled at each pump of
    /// the non-blocking front-end — the "how many completions ride one
    /// poll" distribution the completion-based API exists to raise.
    pub submit_depth: LatencyHistogram,
    /// Capacity of each per-thread trace ring; 0 disables tracing.
    trace_capacity: usize,
    /// All trace rings ever created for this runtime (service loop plus
    /// one per client), kept for draining.
    rings: Mutex<Vec<Arc<TraceRing>>>,
    next_thread: AtomicU32,
    /// Whether PMU profiling was requested for this runtime.
    profile: bool,
    pmu: Mutex<PmuStore>,
}

impl std::fmt::Debug for RuntimeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeTelemetry")
            .field("trace_capacity", &self.trace_capacity)
            .field("call_cycles", &self.call_cycles)
            .field("post_cycles", &self.post_cycles)
            .field("refill_cycles", &self.refill_cycles)
            .finish_non_exhaustive()
    }
}

impl RuntimeTelemetry {
    /// Creates telemetry; `trace_capacity` of 0 disables event tracing
    /// (histograms and gauges are always on — they are too cheap to
    /// gate).
    #[must_use]
    pub fn new(trace_capacity: usize) -> Self {
        Self::with_profiling(trace_capacity, false)
    }

    /// Like [`RuntimeTelemetry::new`], with PMU profiling opted in or
    /// out. When on, the service loop and every client handle wrap their
    /// lifetimes in a [`ngm_pmu::PmuSession`] and deposit the readings
    /// here.
    #[must_use]
    pub fn with_profiling(trace_capacity: usize, profile: bool) -> Self {
        RuntimeTelemetry {
            call_cycles: LatencyHistogram::new(),
            post_cycles: LatencyHistogram::new(),
            refill_cycles: LatencyHistogram::new(),
            phase_cycles: std::array::from_fn(|_| LatencyHistogram::new()),
            submit_depth: LatencyHistogram::new(),
            trace_capacity,
            rings: Mutex::new(Vec::new()),
            next_thread: AtomicU32::new(0),
            profile,
            pmu: Mutex::new(PmuStore::default()),
        }
    }

    /// Whether event tracing is enabled.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.trace_capacity > 0
    }

    /// Whether PMU profiling is enabled.
    #[must_use]
    pub fn profiling_enabled(&self) -> bool {
        self.profile
    }

    /// Deposits the service loop's whole-lifetime PMU reading.
    pub fn record_service_pmu(&self, reading: PmuReading) {
        self.lock_pmu().service = Some(reading);
    }

    /// Deposits one client handle's whole-lifetime PMU reading; readings
    /// from all clients are merged into a single app-core column.
    pub fn record_client_pmu(&self, reading: PmuReading) {
        let mut pmu = self.lock_pmu();
        pmu.clients = Some(match &pmu.clients {
            Some(acc) => acc.merge(&reading),
            None => reading,
        });
        pmu.client_count += 1;
    }

    /// The service-core-vs-app-cores PMU report, when profiling was on
    /// and at least one reading has been deposited. The service column
    /// appears after the loop exits (shutdown); each client column merges
    /// in when its handle drops.
    #[must_use]
    pub fn pmu_report(&self) -> Option<PmuReport> {
        let pmu = self.lock_pmu();
        if pmu.service.is_none() && pmu.clients.is_none() {
            return None;
        }
        let mut rep = PmuReport::new("PMU: service core vs app cores");
        if let Some(s) = pmu.service {
            rep.push("service", s);
        }
        if let Some(c) = pmu.clients {
            rep.push(format!("clients({})", pmu.client_count), c);
        }
        Some(rep)
    }

    fn lock_pmu(&self) -> std::sync::MutexGuard<'_, PmuStore> {
        self.pmu
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates (and retains for draining) a trace ring with the next
    /// runtime thread id, or `None` when tracing is disabled. Thread id 0
    /// is the service loop — it registers first.
    pub fn new_ring(&self) -> Option<Arc<TraceRing>> {
        if self.trace_capacity == 0 {
            return None;
        }
        let thread = self.next_thread.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(TraceRing::new(thread, self.trace_capacity));
        self.lock_rings().push(Arc::clone(&ring));
        Some(ring)
    }

    fn lock_rings(&self) -> std::sync::MutexGuard<'_, Vec<Arc<TraceRing>>> {
        self.rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Drains every ring, returning all events merged in timestamp order
    /// plus the summed overflow-drop count.
    #[must_use]
    pub fn drain_trace(&self) -> TraceDrain {
        let rings: Vec<Arc<TraceRing>> = self.lock_rings().clone();
        let mut events = Vec::new();
        let mut dropped_total = 0;
        for r in rings {
            let d = r.drain();
            events.extend(d.events);
            dropped_total += d.dropped_total;
        }
        events.sort_by_key(|e| e.tsc);
        TraceDrain {
            events,
            dropped_total,
        }
    }

    /// Total trace events lost to ring overflow so far (without
    /// draining).
    #[must_use]
    pub fn trace_dropped_total(&self) -> u64 {
        self.lock_rings().iter().map(|r| r.dropped_total()).sum()
    }

    /// Copies up to the `last` most recent events from every ring, merged
    /// in timestamp order, *without* draining — the blackbox flight
    /// recorder's read path: a post-mortem must not consume history that
    /// a later `drain_trace` (or a second dump) still wants.
    #[must_use]
    pub fn peek_trace(&self, last: usize) -> Vec<ngm_telemetry::trace::TraceEvent> {
        let rings: Vec<Arc<TraceRing>> = self.lock_rings().clone();
        let mut events: Vec<_> = rings.iter().flat_map(|r| r.peek(last)).collect();
        events.sort_by_key(|e| e.tsc);
        let skip = events.len().saturating_sub(last);
        events.drain(..skip);
        events
    }

    /// Records one call's phase breakdown. `stamps` are the slot's
    /// `(request, claim, served, publish)` timestamps; `t0`/`t5` are the
    /// *same* endpoint readings used for the `call_cycles` record, so
    /// the five phases sum to exactly the recorded round trip. All
    /// differences saturate: a stale stamp (e.g. from a request that was
    /// never claimed) records as zero rather than a garbage bucket.
    pub fn record_phases(&self, t0: u64, stamps: (u64, u64, u64, u64), t5: u64) {
        let (t1, t2, t3, t4) = stamps;
        // Clamp each boundary into [t0, t5] so skewed or stale stamps
        // cannot make the phase sum exceed the round trip.
        let t1 = t1.clamp(t0, t5);
        let t2 = t2.clamp(t1, t5);
        let t3 = t3.clamp(t2, t5);
        let t4 = t4.clamp(t3, t5);
        self.phase_cycles[0].record(t1 - t0);
        self.phase_cycles[1].record(t2 - t1);
        self.phase_cycles[2].record(t3 - t2);
        self.phase_cycles[3].record(t4 - t3);
        self.phase_cycles[4].record(t5 - t4);
    }

    /// Assembles the exportable metrics snapshot: the runtime's counters
    /// and gauges (from `stats`) plus both latency histograms.
    #[must_use]
    pub fn metrics(&self, stats: &StatsSnapshot) -> MetricsSnapshot {
        self.metrics_merged(stats, &[])
    }

    /// As [`RuntimeTelemetry::metrics`], but folding in `peers` — the
    /// other shards of a sharded service tier. Latency histograms and
    /// trace-drop totals merge across all telemetries (each series
    /// appears once, covering every shard); `stats` is expected to be the
    /// callers' already-merged counter snapshot. PMU columns from every
    /// shard land in one report.
    #[must_use]
    pub fn metrics_merged(
        &self,
        stats: &StatsSnapshot,
        peers: &[&RuntimeTelemetry],
    ) -> MetricsSnapshot {
        let mut call = self.call_cycles.snapshot();
        let mut post = self.post_cycles.snapshot();
        let mut refill = self.refill_cycles.snapshot();
        let mut submit = self.submit_depth.snapshot();
        let mut phases: Vec<_> = self.phase_cycles.iter().map(|h| h.snapshot()).collect();
        let mut trace_dropped = self.trace_dropped_total();
        for p in peers {
            call.merge(&p.call_cycles.snapshot());
            post.merge(&p.post_cycles.snapshot());
            refill.merge(&p.refill_cycles.snapshot());
            submit.merge(&p.submit_depth.snapshot());
            for (acc, h) in phases.iter_mut().zip(&p.phase_cycles) {
                acc.merge(&h.snapshot());
            }
            trace_dropped += p.trace_dropped_total();
        }
        let mut pmu = self.pmu_report();
        for p in peers {
            if let Some(peer_rep) = p.pmu_report() {
                match &mut pmu {
                    Some(rep) => {
                        for col in peer_rep.cols {
                            rep.push(col.name, col.reading);
                        }
                    }
                    None => pmu = Some(peer_rep),
                }
            }
        }
        let mut m = MetricsSnapshot::new();
        m.counter("ngm_calls_total", stats.calls_served)
            .counter("ngm_posts_total", stats.posts_served)
            .counter("ngm_poll_rounds_total", stats.poll_rounds)
            .counter("ngm_empty_rounds_total", stats.empty_rounds)
            .counter("ngm_clients_registered_total", stats.clients_registered)
            .counter("ngm_post_full_retries_total", stats.post_full_retries)
            .counter("ngm_posts_dropped_total", stats.posts_dropped)
            .counter("ngm_rebalances_total", stats.rebalances)
            .counter("ngm_failovers_total", stats.failovers)
            .gauge("ngm_service_down", i64::from(stats.service_down))
            .counter("ngm_batched_calls_total", stats.batched_calls_served)
            .counter("ngm_deadline_total", stats.deadlines)
            .counter("ngm_retry_total", stats.retry_total)
            .counter("ngm_wouldblock_total", stats.wouldblocks)
            .counter("ngm_wait_transitions_total", stats.wait_transitions)
            .counter("ngm_trace_dropped_total", trace_dropped)
            .gauge("ngm_ring_occupancy", stats.ring_occupancy as i64)
            .gauge("ngm_inflight", stats.inflight)
            .gauge("ngm_magazine_occupancy", stats.magazine_occupancy)
            .gauge("ngm_wait_phase", stats.wait_phase as i64)
            .gauge(
                "ngm_pinned_core",
                stats.pinned_core.map_or(-1, |c| c as i64),
            )
            .gauge(
                "ngm_clock_is_tsc",
                i64::from(ngm_telemetry::clock::source() == "tsc_cycles"),
            )
            .histogram("ngm_call_cycles", call)
            .histogram("ngm_post_cycles", post)
            .histogram("ngm_refill_cycles", refill)
            .histogram("ngm_submit_depth", submit);
        for (name, snap) in PHASE_NAMES.iter().zip(phases) {
            m.histogram(format!("ngm_phase_{name}_cycles"), snap);
        }
        if let Some(rep) = pmu {
            rep.publish(&mut m);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_telemetry::trace::TraceEventKind;

    #[test]
    fn disabled_tracing_yields_no_rings() {
        let t = RuntimeTelemetry::new(0);
        assert!(!t.tracing_enabled());
        assert!(t.new_ring().is_none());
        assert!(t.drain_trace().events.is_empty());
    }

    #[test]
    fn rings_get_distinct_thread_ids() {
        let t = RuntimeTelemetry::new(16);
        let a = t.new_ring().unwrap();
        let b = t.new_ring().unwrap();
        a.push(TraceEventKind::Post, 1, 0);
        b.push(TraceEventKind::Post, 2, 0);
        let d = t.drain_trace();
        let mut threads: Vec<u32> = d.events.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        assert_eq!(threads, vec![0, 1]);
    }

    #[test]
    fn drain_merges_in_timestamp_order() {
        let t = RuntimeTelemetry::new(64);
        let a = t.new_ring().unwrap();
        let b = t.new_ring().unwrap();
        for i in 0..10 {
            if i % 2 == 0 {
                a.push(TraceEventKind::Alloc, i, 0);
            } else {
                b.push(TraceEventKind::Free, i, 0);
            }
        }
        let d = t.drain_trace();
        assert_eq!(d.events.len(), 10);
        assert!(d.events.windows(2).all(|w| w[0].tsc <= w[1].tsc));
    }

    #[test]
    fn phase_records_sum_to_the_round_trip_and_export() {
        let t = RuntimeTelemetry::new(0);
        // A normal call: t0=100, stamps 110/150/900/920, t5=1000.
        t.record_phases(100, (110, 150, 900, 920), 1000);
        let sum: u64 = t.phase_cycles.iter().map(|h| h.snapshot().sum()).sum();
        assert_eq!(sum, 900, "phases partition t5 - t0 exactly");
        // Stale stamps (never-claimed request reusing old values) clamp
        // to zero-width phases instead of recording garbage.
        t.record_phases(2000, (1, 2, 3, 4), 2100);
        let sum: u64 = t.phase_cycles.iter().map(|h| h.snapshot().sum()).sum();
        assert_eq!(sum, 900 + 100);
        let stats = crate::stats::RuntimeStats::new().snapshot();
        let m = t.metrics(&stats);
        for name in PHASE_NAMES {
            let h = m
                .get_histogram(&format!("ngm_phase_{name}_cycles"))
                .unwrap_or_else(|| panic!("missing phase series {name}"));
            assert_eq!(h.count(), 2);
        }
    }

    #[test]
    fn phase_histograms_merge_across_peers() {
        let a = RuntimeTelemetry::new(0);
        let b = RuntimeTelemetry::new(0);
        a.record_phases(0, (10, 20, 30, 40), 50);
        b.record_phases(0, (10, 20, 30, 40), 50);
        let stats = crate::stats::RuntimeStats::new().snapshot();
        let m = a.metrics_merged(&stats, &[&b]);
        let h = m.get_histogram("ngm_phase_queue_cycles").expect("series");
        assert_eq!(h.count(), 2, "both peers' records in one series");
    }

    #[test]
    fn peek_trace_is_non_draining_and_merged() {
        let t = RuntimeTelemetry::new(16);
        let a = t.new_ring().unwrap();
        let b = t.new_ring().unwrap();
        a.push_at(10, TraceEventKind::Alloc, 1, 0);
        b.push_at(5, TraceEventKind::Free, 2, 0);
        a.push_at(20, TraceEventKind::Alloc, 3, 0);
        let peeked = t.peek_trace(2);
        assert_eq!(peeked.len(), 2, "bounded to `last` across all rings");
        assert_eq!(peeked[0].a, 1, "newest events win, oldest first");
        assert_eq!(peeked[1].a, 3);
        assert_eq!(t.drain_trace().events.len(), 3, "peek consumed nothing");
    }

    #[test]
    fn metrics_snapshot_contains_everything() {
        let t = RuntimeTelemetry::new(0);
        t.call_cycles.record(100);
        t.call_cycles.record(200);
        t.post_cycles.record(30);
        t.refill_cycles.record(500);
        let stats = crate::stats::RuntimeStats::new().snapshot();
        let m = t.metrics(&stats);
        assert_eq!(m.get_counter("ngm_calls_total"), Some(0));
        assert_eq!(m.get_counter("ngm_batched_calls_total"), Some(0));
        assert_eq!(m.get_gauge("ngm_pinned_core"), Some(-1));
        assert_eq!(m.get_gauge("ngm_magazine_occupancy"), Some(0));
        assert_eq!(
            m.get_histogram("ngm_refill_cycles").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(
            m.get_histogram("ngm_call_cycles").map(|h| h.count()),
            Some(2)
        );
        assert_eq!(
            m.get_histogram("ngm_post_cycles").map(|h| h.count()),
            Some(1)
        );
        let text = m.to_prometheus_text();
        assert!(text.contains("ngm_call_cycles{quantile=\"0.99\"}"));
    }

    #[test]
    fn nonblocking_series_export_and_merge() {
        let a = RuntimeTelemetry::new(0);
        let b = RuntimeTelemetry::new(0);
        a.submit_depth.record(4);
        b.submit_depth.record(9);
        let stats = crate::stats::RuntimeStats::new();
        stats.record_wouldblock();
        stats.add_inflight(7);
        let m = a.metrics_merged(&stats.snapshot(), &[&b]);
        assert_eq!(m.get_counter("ngm_wouldblock_total"), Some(1));
        assert_eq!(m.get_gauge("ngm_inflight"), Some(7));
        assert_eq!(
            m.get_histogram("ngm_submit_depth").map(|h| h.count()),
            Some(2),
            "both peers' depth samples in one series"
        );
    }
}
