//! Typed errors for the offload runtime.
//!
//! Before the sharded service tier, every failure on the client/service
//! boundary was a `panic!` or `expect` — acceptable with one service
//! thread whose death was fatal anyway, but not with N shards where the
//! correct response to a dead shard is to *route around it*. These errors
//! surface through the `try_*` methods and the `Result`-returning
//! constructors so higher layers (the `NgmConfig` API) can degrade
//! gracefully instead of unwinding.

use std::fmt;
use std::time::Duration;

/// Why an offload-runtime operation could not be completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The service thread has stopped (or already retired this client):
    /// the message ring is closed and no request will ever be answered.
    ServiceStopped,
    /// The service thread panicked; its service state is unrecoverable.
    ServicePanicked,
    /// The OS refused to spawn the service thread.
    SpawnFailed,
    /// `shutdown`/`try_shutdown` was called on a runtime that already
    /// joined its thread.
    AlreadyShutDown,
    /// The operation's deadline budget elapsed before the shard answered:
    /// the shard is wedged or saturated, not (necessarily) dead. Callers
    /// should reroute to another shard or degrade to the inline fallback
    /// path rather than retire the shard outright.
    Deadline {
        /// The shard the request was addressed to.
        shard: usize,
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// The shard is draining toward retirement: it refuses new
    /// synchronous calls (route them to a serving shard) but still
    /// accepts posts, so address-routed frees keep landing on it until
    /// its alloc/free balance reaches zero and its thread joins.
    ShardRetiring {
        /// The retiring shard.
        shard: usize,
    },
    /// The operation could not make progress *right now* without
    /// blocking: the request slot still carries an in-flight submission,
    /// or the post ring is full. Purely transient — distinct from
    /// [`ServiceError::Deadline`] (the shard failed to answer in time)
    /// and [`ServiceError::ShardRetiring`] (the shard refuses new work).
    /// Callers complete in-flight work (or wait for a waker) and retry.
    WouldBlock,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ServiceStopped => write!(f, "offload service thread has stopped"),
            ServiceError::ServicePanicked => write!(f, "offload service thread panicked"),
            ServiceError::SpawnFailed => write!(f, "failed to spawn offload service thread"),
            ServiceError::AlreadyShutDown => write!(f, "offload runtime was already shut down"),
            ServiceError::Deadline { shard, waited } => write!(
                f,
                "request to shard {shard} exceeded its deadline after {waited:?}"
            ),
            ServiceError::ShardRetiring { shard } => {
                write!(f, "shard {shard} is draining toward retirement")
            }
            ServiceError::WouldBlock => {
                write!(
                    f,
                    "operation would block: submission in flight or ring full"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_distinctly() {
        let all = [
            ServiceError::ServiceStopped,
            ServiceError::ServicePanicked,
            ServiceError::SpawnFailed,
            ServiceError::AlreadyShutDown,
            ServiceError::Deadline {
                shard: 3,
                waited: Duration::from_millis(250),
            },
            ServiceError::ShardRetiring { shard: 3 },
            ServiceError::WouldBlock,
        ];
        let mut seen = std::collections::HashSet::new();
        for e in all {
            assert!(seen.insert(e.to_string()), "duplicate message for {e:?}");
        }
    }
}
