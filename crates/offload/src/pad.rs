//! Cache-line padding to keep hot atomics on private lines.

use std::ops::{Deref, DerefMut};

/// Wraps a value in a full cache line so that two [`CachePadded`] values
/// never share a line.
///
/// The request/response protocol between application cores and the service
/// core is built from single-word atomics; without padding, the producer and
/// consumer indices of a ring would false-share and every update would ping
/// the line between cores — exactly the cache interference the paper is
/// trying to remove.
///
/// 128-byte alignment covers adjacent-line prefetchers on modern x86 parts
/// as well as 64-byte-line ARM cores.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() >= 128);
    }

    #[test]
    fn adjacent_padded_values_do_not_share_lines() {
        struct Two {
            a: CachePadded<u64>,
            b: CachePadded<u64>,
        }
        let two = Two {
            a: CachePadded::new(1),
            b: CachePadded::new(2),
        };
        let pa = &two.a as *const _ as usize;
        let pb = &two.b as *const _ as usize;
        assert!(pa.abs_diff(pb) >= 128);
        assert_eq!(*two.a + *two.b, 3);
    }

    #[test]
    fn deref_mut_and_into_inner() {
        let mut p = CachePadded::new(41);
        *p += 1;
        assert_eq!(p.into_inner(), 42);
    }
}
