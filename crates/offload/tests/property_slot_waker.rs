//! Property tests for the request slot's waker protocol.
//!
//! The completion-based front-end hangs or double-wakes if the slot's
//! `register_waker` / `serve` / `retract` edges disagree about who owns
//! the registered waker. These tests drive arbitrary interleavings of
//! the client- and server-side operations against a mirror state
//! machine that predicts the *exact* number of waker fires:
//!
//! * **never lost** — a waker registered while a request is in flight
//!   fires when the response is published (or immediately, if the
//!   response already landed when registration ran);
//! * **never fired after retract** — a successful `REQUEST → EMPTY`
//!   retraction clears the waker, so no later serve (of a *new*
//!   request) can fire the retracted registration.
//!
//! Exact-count equality over arbitrary sequences subsumes both: a lost
//! wake undercounts, a post-retract fire overcounts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};

use ngm_offload::RequestSlot;
use proptest::collection;
use proptest::prelude::*;

/// A waker that counts its fires (the executor stand-in).
struct CountingWake(AtomicUsize);

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// One step of the interleaving, drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Client publishes a request (no-op if one is in flight).
    Begin,
    /// Client registers the waker.
    Register,
    /// Server serves the pending request, if any.
    Serve,
    /// Client attempts to cancel the in-flight request.
    Retract,
    /// Client collects the response, if one landed.
    Poll,
}

fn op(code: u8) -> Op {
    match code % 5 {
        0 => Op::Begin,
        1 => Op::Register,
        2 => Op::Serve,
        3 => Op::Retract,
        _ => Op::Poll,
    }
}

/// The mirror: what the slot's docs promise, reduced to the three bits
/// that decide whether a fire happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Empty,
    Requested,
    Response,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every interleaving of the five slot operations fires the waker
    /// exactly as often as the protocol's contract predicts.
    #[test]
    fn waker_fires_exactly_as_the_protocol_predicts(
        codes in collection::vec(any::<u8>(), 0..64),
    ) {
        let slot = RequestSlot::<u64, u64>::new();
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));

        // Mirror state: the slot phase, whether the server-visible
        // `has_waker` flag is raised, whether a waker is actually
        // stored (a fire *takes* the waker but leaves the flag), and
        // the in-flight request payload.
        let mut state = State::Empty;
        let mut flag = false;
        let mut stored = false;
        let mut expected_fires = 0usize;
        let mut next_req = 0u64;
        let mut inflight = 0u64;

        for &code in &codes {
            match op(code) {
                Op::Begin => {
                    let r = slot.begin(next_req);
                    if state == State::Empty {
                        prop_assert!(r.is_ok());
                        inflight = next_req;
                        next_req += 1;
                        state = State::Requested;
                        // A stale registration survives into the new
                        // request (spurious wakes are allowed; lost
                        // wakes are not).
                    } else {
                        prop_assert_eq!(r, Err(next_req));
                    }
                }
                Op::Register => {
                    slot.register_waker(&waker);
                    flag = true;
                    stored = true;
                    if state == State::Response {
                        // Response already landed: fires immediately,
                        // taking the stored waker.
                        expected_fires += 1;
                        stored = false;
                    }
                }
                Op::Serve => {
                    let served = slot.serve(|q| q + 1);
                    prop_assert_eq!(served, state == State::Requested);
                    if served {
                        state = State::Response;
                        if flag {
                            flag = false;
                            if stored {
                                expected_fires += 1;
                                stored = false;
                            }
                        }
                    }
                }
                Op::Retract => {
                    let won = slot.retract();
                    prop_assert_eq!(won, state == State::Requested);
                    if won {
                        state = State::Empty;
                        // The contract's "never fired after retract":
                        // the registration is gone entirely.
                        flag = false;
                        stored = false;
                    }
                }
                Op::Poll => {
                    let got = slot.poll_response();
                    if state == State::Response {
                        prop_assert_eq!(got, Some(inflight + 1));
                        state = State::Empty;
                    } else {
                        prop_assert_eq!(got, None);
                    }
                }
            }
            prop_assert_eq!(
                counter.0.load(Ordering::SeqCst),
                expected_fires,
                "after {:?}", op(code)
            );
        }
    }
}

/// The concurrent half: a real server thread races `retract`. The CAS
/// protocol makes the outcomes mutually exclusive per round — either
/// the retraction wins (and the waker must stay silent) or the serve
/// wins (and the waker must fire exactly once).
#[test]
fn retract_and_serve_race_is_mutually_exclusive() {
    const ROUNDS: usize = 2_000;
    let slot = Arc::new(RequestSlot::<u64, u64>::new());
    let stop = Arc::new(AtomicUsize::new(0));

    let server = {
        let slot = Arc::clone(&slot);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while stop.load(Ordering::Acquire) == 0 {
                slot.serve(|q| q + 1);
            }
        })
    };

    let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
    let waker = Waker::from(Arc::clone(&counter));
    let mut fired_before = 0usize;
    for round in 0..ROUNDS as u64 {
        slot.begin(round).expect("slot empty at round start");
        slot.register_waker(&waker);
        // Give the server a variable-length window to claim the request
        // before the client tries to take it back.
        for _ in 0..(round % 7) {
            std::hint::spin_loop();
        }
        if slot.retract() {
            // Retraction won: the registration is cleared, and no fire
            // may ever arrive for this round.
            assert_eq!(
                counter.0.load(Ordering::SeqCst),
                fired_before,
                "waker fired after a successful retract (round {round})"
            );
        } else {
            // The server claimed it: the response must land and the
            // waker must fire exactly once for this round.
            let resp = loop {
                if let Some(r) = slot.poll_response() {
                    break r;
                }
                std::hint::spin_loop();
            };
            assert_eq!(resp, round + 1);
            while counter.0.load(Ordering::SeqCst) == fired_before {
                std::hint::spin_loop(); // the fire may trail the response
            }
            fired_before += 1;
            assert_eq!(
                counter.0.load(Ordering::SeqCst),
                fired_before,
                "served round must fire exactly once (round {round})"
            );
        }
    }
    stop.store(1, Ordering::Release);
    server.join().expect("server thread");
}
