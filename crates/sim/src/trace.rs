//! Memory-access event types driven into the simulated machine.

/// Whether an access reads, writes, or atomically read-modify-writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A plain load.
    Load,
    /// A plain store.
    Store,
    /// An atomic read-modify-write (e.g. `lock xadd`, LDXR/STXR pair).
    ///
    /// Atomics behave like a store for coherence purposes and additionally
    /// pay the fixed RMW latency from [`crate::CostModel`]. The paper cites
    /// 67 cycles on average for one such operation.
    AtomicRmw,
}

impl AccessKind {
    /// Returns `true` if the access writes memory (stores and atomics).
    #[inline]
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

/// The provenance of an access, used to attribute misses.
///
/// The paper's core claim is that *metadata* accesses made by the allocator
/// pollute the caches used by *user* accesses; keeping the two apart in the
/// trace lets experiments report pollution directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Application data (the payload of allocated blocks).
    User,
    /// Allocator metadata (free lists, page descriptors, size-class tables).
    Meta,
    /// Stack or other incidental traffic.
    Stack,
}

/// One memory access performed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual byte address of the first byte touched.
    pub addr: u64,
    /// Number of bytes touched; accesses spanning cache lines are split.
    pub size: u32,
    /// Load, store, or atomic.
    pub kind: AccessKind,
    /// User data, allocator metadata, or stack.
    pub class: AccessClass,
    /// Dependent access (pointer chase): the core cannot overlap its miss
    /// latency with other misses, so MLP does not apply.
    pub dependent: bool,
}

impl Access {
    /// Creates a load access.
    #[inline]
    pub fn load(addr: u64, size: u32, class: AccessClass) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::Load,
            class,
            dependent: false,
        }
    }

    /// Creates a store access.
    #[inline]
    pub fn store(addr: u64, size: u32, class: AccessClass) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::Store,
            class,
            dependent: false,
        }
    }

    /// Creates an atomic read-modify-write access.
    #[inline]
    pub fn atomic(addr: u64, size: u32, class: AccessClass) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::AtomicRmw,
            class,
            dependent: false,
        }
    }

    /// Marks the access as a dependent pointer chase (no MLP overlap).
    #[inline]
    pub fn dependent(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Iterates over the cache-line-aligned base addresses this access
    /// touches.
    pub fn lines(&self) -> impl Iterator<Item = u64> {
        let first = self.addr / crate::LINE_SIZE;
        let last = (self.addr + u64::from(self.size.max(1)) - 1) / crate::LINE_SIZE;
        (first..=last).map(|l| l * crate::LINE_SIZE)
    }

    /// Iterates over the page-aligned base addresses this access touches.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        let first = self.addr / crate::PAGE_SIZE;
        let last = (self.addr + u64::from(self.size.max(1)) - 1) / crate::PAGE_SIZE;
        (first..=last).map(|p| p * crate::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_access_touches_one_line() {
        let a = Access::load(0x40, 8, AccessClass::User);
        let lines: Vec<u64> = a.lines().collect();
        assert_eq!(lines, vec![0x40]);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let a = Access::store(0x7c, 8, AccessClass::Meta);
        let lines: Vec<u64> = a.lines().collect();
        assert_eq!(lines, vec![0x40, 0x80]);
    }

    #[test]
    fn zero_size_access_still_touches_its_line() {
        let a = Access::load(0x100, 0, AccessClass::Stack);
        assert_eq!(a.lines().count(), 1);
    }

    #[test]
    fn page_iteration_spans_boundary() {
        let a = Access::load(0xffc, 8, AccessClass::User);
        let pages: Vec<u64> = a.pages().collect();
        assert_eq!(pages, vec![0, 0x1000]);
    }

    #[test]
    fn atomic_is_write() {
        assert!(AccessKind::AtomicRmw.is_write());
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
    }
}
