//! Data TLB model: set-associative (or fully associative) page-translation
//! caches with LRU replacement.

use crate::config::TlbConfig;

/// Hit/miss counters for one TLB instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`; zero when no lookups occurred.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: u64,
    last_use: u64,
    valid: bool,
}

const INVALID: Entry = Entry {
    vpn: 0,
    last_use: 0,
    valid: false,
};

/// A TLB holding virtual-page-number entries.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<Entry>>,
    set_count: u64,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Builds an empty TLB with the given geometry.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            sets: vec![vec![INVALID; cfg.ways as usize]; cfg.sets() as usize],
            set_count: u64::from(cfg.sets()),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates the page containing `page_addr` (page base address),
    /// inserting the mapping on a miss. Returns `true` on a hit.
    pub fn access(&mut self, page_addr: u64) -> bool {
        self.clock += 1;
        let vpn = page_addr / crate::PAGE_SIZE;
        let set = (vpn % self.set_count) as usize;
        let entries = &mut self.sets[set];

        if let Some(e) = entries
            .iter_mut()
            .filter(|e| e.valid)
            .find(|e| e.vpn == vpn)
        {
            e.last_use = self.clock;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        let victim = match entries.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => {
                let mut idx = 0;
                for i in 1..entries.len() {
                    if entries[i].last_use < entries[idx].last_use {
                        idx = i;
                    }
                }
                idx
            }
        };
        entries[victim] = Entry {
            vpn,
            last_use: self.clock,
            valid: true,
        };
        false
    }

    /// Returns `true` if the page translation is resident (no state change).
    pub fn probe(&self, page_addr: u64) -> bool {
        let vpn = page_addr / crate::PAGE_SIZE;
        let set = (vpn % self.set_count) as usize;
        self.sets[set].iter().any(|e| e.valid && e.vpn == vpn)
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn repeated_translation_hits() {
        let mut t = Tlb::new(TlbConfig::full(4));
        assert!(!t.access(0));
        assert!(t.access(0));
        assert!(t.access(100)); // same page as 0 after page rounding in caller
        assert_eq!(t.stats().hits, 2);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = Tlb::new(TlbConfig::full(2));
        t.access(0);
        t.access(PAGE_SIZE);
        t.access(0); // refresh page 0
        t.access(2 * PAGE_SIZE); // evicts page 1
        assert!(t.probe(0));
        assert!(!t.probe(PAGE_SIZE));
        assert!(t.probe(2 * PAGE_SIZE));
    }

    #[test]
    fn set_associative_maps_by_vpn() {
        let mut t = Tlb::new(TlbConfig::set_assoc(4, 2)); // 2 sets
                                                          // Pages 0 and 2 map to set 0; pages 1 and 3 to set 1.
        t.access(0);
        t.access(2 * PAGE_SIZE);
        t.access(4 * PAGE_SIZE); // set 0 again -> evicts page 0
        assert!(!t.probe(0));
        assert!(t.probe(2 * PAGE_SIZE));
        // Set 1 untouched.
        t.access(PAGE_SIZE);
        assert!(t.probe(PAGE_SIZE));
    }

    #[test]
    fn miss_ratio_computed() {
        let mut t = Tlb::new(TlbConfig::full(8));
        t.access(0);
        t.access(0);
        t.access(0);
        t.access(0);
        assert!((t.stats().miss_ratio() - 0.25).abs() < 1e-12);
    }
}
