//! Set-associative cache with true-LRU replacement.

use crate::config::CacheConfig;

/// Outcome of a cache lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; the field carries the
    /// evicted victim line (base address) if the victim was dirty.
    Miss {
        /// Base address of a dirty line written back, if any.
        dirty_victim: Option<u64>,
    },
}

impl Lookup {
    /// Returns `true` for [`Lookup::Miss`].
    #[inline]
    pub fn is_miss(&self) -> bool {
        matches!(self, Lookup::Miss { .. })
    }
}

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted while dirty.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no lookups occurred.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_use: u64,
    dirty: bool,
    valid: bool,
}

const INVALID: Way = Way {
    tag: 0,
    last_use: 0,
    dirty: false,
    valid: false,
};

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Addresses are split as `| tag | set index | line offset |`; the line
/// offset width is fixed by [`crate::LINE_SIZE`].
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        Cache {
            sets: vec![vec![INVALID; cfg.ways as usize]; sets],
            set_mask: cfg.sets() - 1,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / crate::LINE_SIZE) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, line_addr: u64) -> u64 {
        (line_addr / crate::LINE_SIZE) >> self.set_mask.count_ones()
    }

    /// Looks up `line_addr` (a line base address), filling it on a miss.
    ///
    /// `write` marks the line dirty on completion. Returns whether the
    /// lookup hit and, on a miss, any dirty victim that was written back.
    pub fn access(&mut self, line_addr: u64, write: bool) -> Lookup {
        self.clock += 1;
        let clock = self.clock;
        let set_bits = self.set_mask.count_ones();
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let ways = &mut self.sets[set];

        if let Some(w) = ways.iter_mut().filter(|w| w.valid).find(|w| w.tag == tag) {
            w.last_use = clock;
            w.dirty |= write;
            self.stats.hits += 1;
            return Lookup::Hit;
        }

        self.stats.misses += 1;
        // Choose an invalid way first, otherwise the LRU way.
        let victim_idx = match ways.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let mut idx = 0;
                for i in 1..ways.len() {
                    if ways[i].last_use < ways[idx].last_use {
                        idx = i;
                    }
                }
                idx
            }
        };
        let victim = ways[victim_idx];
        let dirty_victim = if victim.valid && victim.dirty {
            self.stats.dirty_evictions += 1;
            // Reconstruct the victim's base address from tag and set index.
            Some(((victim.tag << set_bits) | set as u64) * crate::LINE_SIZE)
        } else {
            None
        };
        ways[victim_idx] = Way {
            tag,
            last_use: clock,
            dirty: write,
            valid: true,
        };
        Lookup::Miss { dirty_victim }
    }

    /// Returns `true` if the line is currently resident (no state change).
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates a line if present; returns `true` if it was dirty.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == tag {
                let was_dirty = w.dirty;
                *w = INVALID;
                return was_dirty;
            }
        }
        false
    }

    /// Clears the dirty bit of a resident line (after a coherence
    /// writeback), leaving it valid.
    pub fn clean(&mut self, line_addr: u64) {
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        for w in &mut self.sets[set] {
            if w.valid && w.tag == tag {
                w.dirty = false;
            }
        }
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(c.access(0x0, false).is_miss());
        assert_eq!(c.access(0x0, false), Lookup::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines whose line index is even (2 sets).
        c.access(0x000, false); // line 0, set 0
        c.access(0x080, false); // line 2, set 0
        c.access(0x000, false); // touch line 0 again
        c.access(0x100, false); // line 4, set 0 -> evicts line 2
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_victim_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        // Third distinct line in set 0 evicts LRU = 0x000, which is dirty.
        match c.access(0x100, false) {
            Lookup::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(0x000)),
            Lookup::Hit => panic!("expected miss"),
        }
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0x40, true);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn clean_clears_dirty_bit() {
        let mut c = tiny();
        c.access(0x40, true);
        c.clean(0x40);
        // Invalidate now reports not-dirty.
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(0x00, false); // set 0
        c.access(0x40, false); // set 1
        c.access(0x80, false); // set 0
        c.access(0xc0, false); // set 1
        assert_eq!(c.resident_lines(), 4);
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.access(0x00, false), Lookup::Hit);
    }

    #[test]
    fn victim_address_reconstruction_roundtrips() {
        // 4 sets x 1 way.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 1,
        });
        let addr = 7 * 4 * 64 + 2 * 64; // tag 7, set 2
        c.access(addr, true);
        match c.access(addr + 4 * 64, false) {
            Lookup::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(addr)),
            Lookup::Hit => panic!("expected miss"),
        }
    }
}
