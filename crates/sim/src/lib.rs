//! Trace-driven memory-hierarchy simulator for the NextGen-Malloc reproduction.
//!
//! The paper's evaluation (Tables 1–3) is expressed in hardware PMU counters:
//! cycles, instructions, LLC load/store misses, and dTLB load/store misses.
//! This crate provides a deterministic, software-only stand-in for those
//! counters: a machine with per-core L1d and L2 caches, per-core dTLB and
//! STLB, a shared last-level cache with MESI-style invalidation, a page-walk
//! model, and a cycle cost model that includes the atomic-RMW latency the
//! paper builds its §4.1 argument on.
//!
//! Allocator models (see the `ngm-simalloc` crate) and workload generators
//! drive the machine with [`Access`] events; experiments read back
//! [`PmuCounters`] per core or aggregated.
//!
//! # Examples
//!
//! ```
//! use ngm_sim::{Access, AccessClass, Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::a72(2));
//! m.access(0, Access::load(0x1000, 8, AccessClass::User));
//! m.retire(0, 10); // ten non-memory instructions
//! assert!(m.core_counters(0).cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod coherence;
pub mod config;
pub mod counters;
pub mod machine;
pub mod tlb;
pub mod trace;

pub use cache::{Cache, CacheStats};
pub use config::{CacheConfig, CoreConfig, CoreType, CostModel, MachineConfig, TlbConfig};
pub use counters::PmuCounters;
pub use machine::Machine;
pub use tlb::{Tlb, TlbStats};
pub use trace::{Access, AccessClass, AccessKind};

/// Cache-line size used throughout the simulator, in bytes.
pub const LINE_SIZE: u64 = 64;

/// Page size used by the TLB model, in bytes.
pub const PAGE_SIZE: u64 = 4096;
