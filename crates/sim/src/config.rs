//! Machine, cache, TLB, and cost-model configuration.

/// Geometry of one set-associative cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `ways * sets * LINE_SIZE`.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a configuration from a capacity in KiB and an associativity.
    ///
    /// # Panics
    ///
    /// Panics if the resulting number of sets is not a power of two or the
    /// capacity is not divisible by `ways * LINE_SIZE`.
    pub fn kib(size_kib: u64, ways: u32) -> Self {
        let cfg = CacheConfig {
            size_bytes: size_kib * 1024,
            ways,
        };
        assert!(cfg.sets().is_power_of_two(), "sets must be a power of two");
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        assert!(
            self.size_bytes
                .is_multiple_of(u64::from(self.ways) * crate::LINE_SIZE),
            "capacity must divide evenly into ways * line size"
        );
        self.size_bytes / (u64::from(self.ways) * crate::LINE_SIZE)
    }
}

/// Geometry of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of page-translation entries.
    pub entries: u32,
    /// Associativity; `entries` for fully associative.
    pub ways: u32,
}

impl TlbConfig {
    /// A fully associative TLB with the given entry count.
    pub fn full(entries: u32) -> Self {
        TlbConfig {
            entries,
            ways: entries,
        }
    }

    /// A set-associative TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` or sets is not a power
    /// of two.
    pub fn set_assoc(entries: u32, ways: u32) -> Self {
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        TlbConfig { entries, ways }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

/// The kind of core, per the paper's §3.2 "Type of Core to Offload to".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreType {
    /// A big out-of-order application core (the paper's "other rooms").
    BigOutOfOrder,
    /// A small single-threaded in-order integer core.
    LittleInOrder,
    /// A near-memory in-order core: lower DRAM latency, tiny caches.
    NearMemory,
}

/// Per-core configuration: pipeline throughput plus private cache geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Which kind of core this is.
    pub core_type: CoreType,
    /// Retired instructions per cycle for non-memory work.
    pub ipc: f64,
    /// Memory-level parallelism: how many outstanding misses the core
    /// overlaps. Observed stall cycles are `latency / mlp`. Out-of-order
    /// cores hide more miss latency than in-order ones.
    pub mlp: f64,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2 cache.
    pub l2: CacheConfig,
    /// First-level data TLB.
    pub dtlb: TlbConfig,
    /// Second-level (shared L2) TLB.
    pub stlb: TlbConfig,
    /// DRAM latency override in cycles; `None` uses the machine-wide value.
    ///
    /// Near-memory cores see a lower effective DRAM latency.
    pub dram_latency_override: Option<u64>,
    /// The core sits in its own cluster: its misses skip the shared LLC
    /// entirely (it neither pollutes nor benefits from it). On the
    /// paper's AWS A1, clusters of four A72 cores share an L2; pinning
    /// the service thread to another cluster gives it "its own room" at
    /// the cache level too.
    pub own_cluster: bool,
}

impl CoreConfig {
    /// A Cortex-A72-like big core (the paper prototypes on an AWS A1 with
    /// 16 Armv8-A Cortex-A72 cores).
    pub fn big() -> Self {
        CoreConfig {
            core_type: CoreType::BigOutOfOrder,
            ipc: 2.0,
            mlp: 4.0,
            l1d: CacheConfig::kib(32, 8),
            l2: CacheConfig::kib(256, 8),
            // Cortex-A72: 32-entry L1 dTLB, 512-entry unified L2 TLB.
            dtlb: TlbConfig::full(32),
            stlb: TlbConfig::set_assoc(512, 4),
            dram_latency_override: None,
            own_cluster: false,
        }
    }

    /// A small in-order integer core (§3.2: "a single-threaded in-order
    /// integer CPU may be adequate").
    pub fn little() -> Self {
        CoreConfig {
            core_type: CoreType::LittleInOrder,
            ipc: 1.0,
            mlp: 1.5,
            l1d: CacheConfig::kib(16, 4),
            l2: CacheConfig::kib(64, 4),
            dtlb: TlbConfig::full(32),
            stlb: TlbConfig::set_assoc(256, 4),
            dram_latency_override: None,
            own_cluster: false,
        }
    }

    /// A near-memory core with a micro-cache and reduced DRAM latency
    /// (§3.2: "the near-memory core will likely have lower memory access
    /// latencies; thus requiring only a small (micro) cache").
    pub fn near_memory() -> Self {
        CoreConfig {
            core_type: CoreType::NearMemory,
            ipc: 1.0,
            mlp: 1.0,
            l1d: CacheConfig::kib(8, 4),
            l2: CacheConfig::kib(16, 4),
            dtlb: TlbConfig::full(16),
            stlb: TlbConfig::set_assoc(64, 4),
            dram_latency_override: Some(60),
            own_cluster: true,
        }
    }
}

/// Latency constants, in cycles.
///
/// The atomic-RMW figure of 67 cycles and the contended worst case of ~700
/// cycles come from the paper's §3.1.1 (citing Rajaram et al. and
/// Asgharzadeh et al.); the 214-cycle average LLC/TLB miss penalty is the
/// §4.1 estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// L1 data-cache hit latency.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// Shared-LLC hit latency.
    pub llc_hit: u64,
    /// DRAM access latency.
    pub dram: u64,
    /// Additional latency of one atomic read-modify-write, uncontended.
    pub atomic_rmw: u64,
    /// Additional latency per remote core that must be invalidated or
    /// snooped for a coherence transition.
    pub coherence_hop: u64,
    /// STLB hit latency (added on a dTLB miss that hits the STLB).
    pub stlb_hit: u64,
    /// Page-table-walk latency (added on an STLB miss). The paper notes TLB
    /// misses "can incur 100s of cycles in modern processors".
    pub page_walk: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            l1_hit: 4,
            l2_hit: 12,
            llc_hit: 40,
            dram: 260,
            atomic_rmw: 67,
            coherence_hop: 45,
            stlb_hit: 8,
            page_walk: 250,
        }
    }
}

/// Full machine configuration: one entry in `cores` per simulated core, a
/// shared LLC, and the latency model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Per-core configurations. Core IDs index into this vector.
    pub cores: Vec<CoreConfig>,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Latency constants.
    pub cost: CostModel,
}

impl MachineConfig {
    /// An AWS-A1-like machine: `n` Cortex-A72-class cores sharing a 2 MiB
    /// cluster cache as LLC (the paper's prototype platform, §4.2;
    /// Graviton1 clusters share 2 MiB of L2-as-LLC).
    pub fn a72(n: usize) -> Self {
        MachineConfig {
            cores: vec![CoreConfig::big(); n],
            llc: CacheConfig::kib(2 * 1024, 16),
            cost: CostModel::default(),
        }
    }

    /// An asymmetric machine: `n` big application cores plus one service
    /// core of the given type (the paper's §3.2 design space). The
    /// service core always sits in its own cluster.
    pub fn asymmetric(n_big: usize, service: CoreConfig) -> Self {
        let mut cores = vec![CoreConfig::big(); n_big];
        let mut service = service;
        service.own_cluster = true;
        cores.push(service);
        MachineConfig {
            cores,
            llc: CacheConfig::kib(2 * 1024, 16),
            cost: CostModel::default(),
        }
    }

    /// An asymmetric machine with a *tier* of service cores: `n_big`
    /// application cores plus `n_service` copies of the given service
    /// core, each in its own cluster (the sharded generalization of
    /// [`MachineConfig::asymmetric`] — service cores occupy the highest
    /// core IDs).
    pub fn asymmetric_many(n_big: usize, n_service: usize, service: CoreConfig) -> Self {
        let mut cores = vec![CoreConfig::big(); n_big];
        let mut service = service;
        service.own_cluster = true;
        cores.extend(std::iter::repeat_n(service, n_service));
        MachineConfig {
            cores,
            llc: CacheConfig::kib(2 * 1024, 16),
            cost: CostModel::default(),
        }
    }

    /// Number of cores in the machine.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The machine's cluster map: one cluster id per core, in core-id
    /// order. Cores that share the LLC all land in cluster 0; each
    /// `own_cluster` core (a service core with "its own room" at the
    /// cache level) gets the next fresh id. The elastic tier feeds this
    /// straight into `ngm_core::ShardTopology::from_clusters` so shard
    /// placement follows the simulated cache topology.
    pub fn cluster_map(&self) -> Vec<u8> {
        let mut next = 1u8;
        self.cores
            .iter()
            .map(|c| {
                if c.own_cluster {
                    let id = next;
                    next = next.saturating_add(1);
                    id
                } else {
                    0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sets_power_of_two() {
        let c = CacheConfig::kib(32, 8);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_rejects_non_pow2_sets() {
        let _ = CacheConfig::kib(24, 8);
    }

    #[test]
    fn tlb_full_assoc_has_one_set() {
        let t = TlbConfig::full(64);
        assert_eq!(t.sets(), 1);
    }

    #[test]
    fn tlb_set_assoc_geometry() {
        let t = TlbConfig::set_assoc(1024, 4);
        assert_eq!(t.sets(), 256);
    }

    #[test]
    fn a72_machine_has_requested_cores() {
        let m = MachineConfig::a72(16);
        assert_eq!(m.num_cores(), 16);
        assert_eq!(m.cores[0].core_type, CoreType::BigOutOfOrder);
    }

    #[test]
    fn asymmetric_appends_service_core() {
        let m = MachineConfig::asymmetric(4, CoreConfig::near_memory());
        assert_eq!(m.num_cores(), 5);
        assert_eq!(m.cores[4].core_type, CoreType::NearMemory);
        assert!(m.cores[4].dram_latency_override.is_some());
    }

    #[test]
    fn asymmetric_many_appends_a_service_tier() {
        let m = MachineConfig::asymmetric_many(4, 3, CoreConfig::big());
        assert_eq!(m.num_cores(), 7);
        for s in 4..7 {
            assert!(m.cores[s].own_cluster, "service cores get their own room");
        }
        assert!(!m.cores[0].own_cluster);
        // One service core degenerates to the classic asymmetric shape.
        assert_eq!(
            MachineConfig::asymmetric_many(2, 1, CoreConfig::near_memory()),
            MachineConfig::asymmetric(2, CoreConfig::near_memory())
        );
    }

    #[test]
    fn cluster_map_gives_service_cores_fresh_ids() {
        let m = MachineConfig::asymmetric_many(4, 3, CoreConfig::near_memory());
        assert_eq!(m.cluster_map(), vec![0, 0, 0, 0, 1, 2, 3]);
        // A symmetric machine is one big cluster.
        assert!(MachineConfig::a72(8).cluster_map().iter().all(|&c| c == 0));
    }

    #[test]
    fn default_costs_match_paper_constants() {
        let c = CostModel::default();
        // §3.1.1: one atomic RMW averages 67 cycles on Sandy Bridge.
        assert_eq!(c.atomic_rmw, 67);
        // §2.2: TLB misses incur 100s of cycles.
        assert!(c.page_walk >= 100);
    }
}
