//! The simulated machine: per-core cache/TLB hierarchies, a shared LLC, a
//! coherence directory, and PMU counter accumulation.

use crate::cache::Cache;
use crate::coherence::Directory;
use crate::config::MachineConfig;
use crate::counters::PmuCounters;
use crate::tlb::Tlb;
use crate::trace::{Access, AccessClass, AccessKind};

struct Core {
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    stlb: Tlb,
    counters: PmuCounters,
    /// Fractional-cycle accumulator so `ipc`/`mlp` scaling never loses time.
    cycle_frac: f64,
}

/// A multi-core machine processing [`Access`] events.
///
/// All state mutation is single-threaded: simulated cores are driven by the
/// caller in whatever interleaving the experiment dictates, which keeps runs
/// deterministic and reproducible.
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Core>,
    llc: Cache,
    directory: Directory,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no cores or more than 64 cores (the
    /// coherence directory uses a 64-bit holder mask).
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(!cfg.cores.is_empty(), "machine needs at least one core");
        assert!(cfg.cores.len() <= 64, "directory supports up to 64 cores");
        let cores = cfg
            .cores
            .iter()
            .map(|c| Core {
                l1d: Cache::new(c.l1d),
                l2: Cache::new(c.l2),
                dtlb: Tlb::new(c.dtlb),
                stlb: Tlb::new(c.stlb),
                counters: PmuCounters::default(),
                cycle_frac: 0.0,
            })
            .collect();
        let llc = Cache::new(cfg.llc);
        Machine {
            cfg,
            cores,
            llc,
            directory: Directory::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    fn add_cycles(&mut self, core: usize, cycles: f64) {
        let c = &mut self.cores[core];
        c.cycle_frac += cycles;
        let whole = c.cycle_frac.floor();
        c.counters.cycles += whole as u64;
        c.cycle_frac -= whole;
    }

    /// Retires `n` non-memory instructions on `core`, advancing its clock by
    /// `n / ipc` cycles.
    pub fn retire(&mut self, core: usize, n: u64) {
        let ipc = self.cfg.cores[core].ipc;
        self.cores[core].counters.instructions += n;
        self.add_cycles(core, n as f64 / ipc);
    }

    /// Advances `core`'s clock without retiring instructions (stall or
    /// spin-wait time).
    pub fn idle(&mut self, core: usize, cycles: u64) {
        self.add_cycles(core, cycles as f64);
    }

    /// Performs one memory access on `core`, updating caches, TLBs, the
    /// coherence directory, and counters.
    ///
    /// Returns the latency charged, in cycles (before MLP scaling).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, a: Access) -> u64 {
        let cost = self.cfg.cost;
        let core_cfg = self.cfg.cores[core];
        let dram = core_cfg.dram_latency_override.unwrap_or(cost.dram);
        let is_write = a.kind.is_write();
        let mut latency = 0u64;
        let mut trans_latency = 0u64;

        // One instruction per architectural access (not per touched line).
        self.cores[core].counters.instructions += 1;
        if is_write {
            self.cores[core].counters.stores += 1;
        } else {
            self.cores[core].counters.loads += 1;
        }
        if a.kind == AccessKind::AtomicRmw {
            self.cores[core].counters.atomic_rmws += 1;
            latency += cost.atomic_rmw;
        }

        // TLB: translate every page the access touches.
        let pages: Vec<u64> = a.pages().collect();
        for page in pages {
            if !self.cores[core].dtlb.access(page) {
                if is_write {
                    self.cores[core].counters.dtlb_store_misses += 1;
                } else {
                    self.cores[core].counters.dtlb_load_misses += 1;
                }
                trans_latency += cost.stlb_hit;
                if !self.cores[core].stlb.access(page) {
                    self.cores[core].counters.page_walks += 1;
                    trans_latency += cost.page_walk;
                }
            }
        }

        // Cache hierarchy: walk every line the access touches.
        let lines: Vec<u64> = a.lines().collect();
        for line in lines {
            // Coherence first: stores invalidate remote copies, loads snoop
            // remotely-modified data. Snapshot the holder set before the
            // directory transition overwrites it.
            let prior_holders: Vec<usize> = self.directory.other_holders(core, line).collect();
            let action = self.directory.access(core, line, is_write);
            if action.remote_hops > 0 {
                latency += u64::from(action.remote_hops) * cost.coherence_hop;
                self.cores[core].counters.coherence_events += u64::from(action.remote_hops);
                // Remove or clean the line in remote private caches.
                for h in prior_holders {
                    if h == core {
                        continue;
                    }
                    if is_write {
                        self.cores[h].l1d.invalidate(line);
                        self.cores[h].l2.invalidate(line);
                    } else {
                        self.cores[h].l1d.clean(line);
                        self.cores[h].l2.clean(line);
                    }
                }
            }
            if action.dirty_transfer {
                // Cache-to-cache transfer: the line comes from the remote
                // core's cache, not DRAM. Charge the hop plus an
                // LLC-class fill, install the line locally, and count it
                // the way perf does (an L1 and last-level miss).
                latency += cost.coherence_hop + cost.llc_hit;
                self.cores[core].l1d.invalidate(line);
                self.cores[core].l2.invalidate(line);
                let _ = self.cores[core].l1d.access(line, is_write);
                let _ = self.cores[core].l2.access(line, is_write);
                if !core_cfg.own_cluster {
                    let _ = self.llc.access(line, is_write);
                }
                if is_write {
                    self.cores[core].counters.l1d_store_misses += 1;
                    self.cores[core].counters.llc_store_misses += 1;
                } else {
                    self.cores[core].counters.l1d_load_misses += 1;
                    self.cores[core].counters.llc_load_misses += 1;
                }
                match a.class {
                    AccessClass::Meta => self.cores[core].counters.meta_llc_misses += 1,
                    AccessClass::User => self.cores[core].counters.user_llc_misses += 1,
                    AccessClass::Stack => {}
                }
                continue;
            }

            if self.cores[core].l1d.access(line, is_write) == crate::cache::Lookup::Hit {
                latency += cost.l1_hit;
                continue;
            }
            if is_write {
                self.cores[core].counters.l1d_store_misses += 1;
            } else {
                self.cores[core].counters.l1d_load_misses += 1;
            }

            if self.cores[core].l2.access(line, is_write) == crate::cache::Lookup::Hit {
                latency += cost.l2_hit;
                continue;
            }

            if !core_cfg.own_cluster && self.llc.access(line, is_write) == crate::cache::Lookup::Hit
            {
                latency += cost.llc_hit;
                continue;
            }

            // LLC miss: full DRAM access.
            if is_write {
                self.cores[core].counters.llc_store_misses += 1;
            } else {
                self.cores[core].counters.llc_load_misses += 1;
            }
            match a.class {
                AccessClass::Meta => self.cores[core].counters.meta_llc_misses += 1,
                AccessClass::User => self.cores[core].counters.user_llc_misses += 1,
                AccessClass::Stack => {}
            }
            latency += dram;
        }

        // Dependent (pointer-chasing) accesses cannot overlap their miss
        // latency; address translation walks serialize regardless.
        let mlp = if a.dependent {
            1.0
        } else {
            core_cfg.mlp.max(1.0)
        };
        let trans_mlp = core_cfg.mlp.clamp(1.0, 2.0);
        self.add_cycles(
            core,
            latency as f64 / mlp + trans_latency as f64 / trans_mlp,
        );
        latency + trans_latency
    }

    /// Convenience: executes an atomic RMW at `addr` on `core` and returns
    /// the charged latency.
    pub fn atomic_rmw(&mut self, core: usize, addr: u64, class: AccessClass) -> u64 {
        self.access(core, Access::atomic(addr, 8, class))
    }

    /// Counters for one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_counters(&self, core: usize) -> PmuCounters {
        self.cores[core].counters
    }

    /// Sum of all per-core counters.
    pub fn total_counters(&self) -> PmuCounters {
        self.cores
            .iter()
            .fold(PmuCounters::default(), |acc, c| acc.merge(&c.counters))
    }

    /// The maximum per-core cycle count — the machine's wall-clock when
    /// cores run concurrently.
    pub fn wall_cycles(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.counters.cycles)
            .max()
            .unwrap_or(0)
    }

    /// Zeroes all counters, keeping cache/TLB contents (for warmup-then-
    /// measure protocols).
    pub fn reset_counters(&mut self) {
        for c in &mut self.cores {
            c.counters = PmuCounters::default();
            c.cycle_frac = 0.0;
        }
    }

    /// L1d statistics for diagnostics.
    pub fn l1d_stats(&self, core: usize) -> crate::cache::CacheStats {
        self.cores[core].l1d.stats()
    }

    /// Shared-LLC statistics for diagnostics.
    pub fn llc_stats(&self) -> crate::cache::CacheStats {
        self.llc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, MachineConfig};
    use crate::trace::AccessClass;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::a72(n))
    }

    #[test]
    fn cold_access_misses_everywhere() {
        let mut m = machine(1);
        m.access(0, Access::load(0x1000, 8, AccessClass::User));
        let c = m.core_counters(0);
        assert_eq!(c.l1d_load_misses, 1);
        assert_eq!(c.llc_load_misses, 1);
        assert_eq!(c.dtlb_load_misses, 1);
        assert_eq!(c.page_walks, 1);
        assert_eq!(c.instructions, 1);
        assert!(c.cycles > 0);
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut m = machine(1);
        m.access(0, Access::load(0x1000, 8, AccessClass::User));
        let before = m.core_counters(0);
        let lat = m.access(0, Access::load(0x1000, 8, AccessClass::User));
        let after = m.core_counters(0);
        assert_eq!(after.l1d_load_misses, before.l1d_load_misses);
        assert_eq!(lat, m.config().cost.l1_hit);
    }

    #[test]
    fn atomic_pays_rmw_cost() {
        let mut m = machine(1);
        m.access(0, Access::load(0x40, 8, AccessClass::Meta)); // warm line + TLB
        let lat = m.atomic_rmw(0, 0x40, AccessClass::Meta);
        assert_eq!(lat, m.config().cost.atomic_rmw + m.config().cost.l1_hit);
        assert_eq!(m.core_counters(0).atomic_rmws, 1);
    }

    #[test]
    fn cross_core_write_invalidates() {
        let mut m = machine(2);
        m.access(0, Access::load(0x40, 8, AccessClass::User));
        m.access(0, Access::load(0x40, 8, AccessClass::User)); // now in L1 of core 0
        m.access(1, Access::store(0x40, 8, AccessClass::User));
        assert!(m.core_counters(1).coherence_events >= 1);
        // Core 0's next load must miss L1 again (line was invalidated).
        let before = m.core_counters(0).l1d_load_misses;
        m.access(0, Access::load(0x40, 8, AccessClass::User));
        assert_eq!(m.core_counters(0).l1d_load_misses, before + 1);
    }

    #[test]
    fn read_of_remote_dirty_pays_transfer() {
        let mut m = machine(2);
        m.access(0, Access::store(0x40, 8, AccessClass::Meta));
        let cold_equiv = {
            let mut m2 = machine(2);
            m2.access(1, Access::load(0x40, 8, AccessClass::Meta))
        };
        let lat = m.access(1, Access::load(0x40, 8, AccessClass::Meta));
        // Snoop + transfer costs two coherence hops beyond a cold miss,
        // except the LLC now holds the line, trimming the DRAM trip.
        assert!(lat != cold_equiv || lat > 0);
        assert!(m.core_counters(1).coherence_events >= 1);
    }

    #[test]
    fn retire_scales_by_ipc() {
        let mut m = machine(1);
        m.retire(0, 1000);
        let c = m.core_counters(0);
        assert_eq!(c.instructions, 1000);
        // big core ipc = 2.0
        assert_eq!(c.cycles, 500);
    }

    #[test]
    fn fractional_cycles_accumulate() {
        let mut m = machine(1);
        for _ in 0..10 {
            m.retire(0, 1); // 0.5 cycles each
        }
        assert_eq!(m.core_counters(0).cycles, 5);
    }

    #[test]
    fn near_memory_core_sees_lower_dram_latency() {
        let mut m = Machine::new(MachineConfig::asymmetric(1, CoreConfig::near_memory()));
        let lat_big = m.access(0, Access::load(0x100_0000, 8, AccessClass::User));
        let lat_nm = m.access(1, Access::load(0x200_0000, 8, AccessClass::User));
        assert!(lat_nm < lat_big);
    }

    #[test]
    fn wall_cycles_is_max_core() {
        let mut m = machine(2);
        m.retire(0, 100);
        m.retire(1, 5000);
        assert_eq!(m.wall_cycles(), m.core_counters(1).cycles);
    }

    #[test]
    fn reset_counters_keeps_cache_state() {
        let mut m = machine(1);
        m.access(0, Access::load(0x1000, 8, AccessClass::User));
        m.reset_counters();
        assert_eq!(m.core_counters(0).instructions, 0);
        // Line stays cached: second access is an L1 hit.
        let lat = m.access(0, Access::load(0x1000, 8, AccessClass::User));
        assert_eq!(lat, m.config().cost.l1_hit);
    }

    #[test]
    fn meta_and_user_misses_attributed() {
        let mut m = machine(1);
        m.access(0, Access::load(0x10_0000, 8, AccessClass::Meta));
        m.access(0, Access::load(0x20_0000, 8, AccessClass::User));
        let c = m.core_counters(0);
        assert_eq!(c.meta_llc_misses, 1);
        assert_eq!(c.user_llc_misses, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        let mut m = machine(1);
        m.access(1, Access::load(0, 8, AccessClass::User));
    }
}
