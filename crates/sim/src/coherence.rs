//! MESI-lite directory tracking which cores hold each cache line.
//!
//! The paper's §2.3 argument — inter-core metadata synchronization is what
//! makes multi-threaded UMAs expensive — is about exactly the transitions
//! modelled here: a store to a line another core holds must invalidate the
//! remote copy, and a load of a line another core has modified must snoop
//! it back, each costing cross-core hops.

use std::collections::HashMap;

/// What a directory lookup asks the machine to do before the local access
/// proceeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceAction {
    /// Number of remote cores whose copies must be invalidated (writes) or
    /// snooped/downgraded (reads of modified data).
    pub remote_hops: u32,
    /// Remote copies that were dirty and must be transferred/written back.
    pub dirty_transfer: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of cores holding the line.
    holders: u64,
    /// Core that holds the line modified, if any.
    modified: Option<u8>,
}

/// Directory of line states across all cores.
#[derive(Debug, Default)]
pub struct Directory {
    lines: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access by `core` to `line_addr` and returns the remote
    /// work it implies. `write` selects store/RFO semantics.
    ///
    /// The returned [`CoherenceAction`] also tells the machine which remote
    /// private caches to invalidate; the machine performs those
    /// invalidations (this directory only tracks ownership).
    pub fn access(&mut self, core: usize, line_addr: u64, write: bool) -> CoherenceAction {
        debug_assert!(core < 64, "directory supports up to 64 cores");
        let bit = 1u64 << core;
        let e = self.lines.entry(line_addr).or_default();
        let mut action = CoherenceAction::default();

        if write {
            let others = e.holders & !bit;
            action.remote_hops = others.count_ones();
            if let Some(owner) = e.modified {
                if owner as usize != core {
                    action.dirty_transfer = true;
                }
            }
            e.holders = bit;
            e.modified = Some(core as u8);
        } else {
            if let Some(owner) = e.modified {
                if owner as usize != core {
                    // Snoop the modified copy back; owner keeps a clean copy.
                    action.remote_hops = 1;
                    action.dirty_transfer = true;
                    e.modified = None;
                }
            }
            e.holders |= bit;
        }
        action
    }

    /// Returns the cores (other than `core`) currently holding `line_addr`.
    pub fn other_holders(&self, core: usize, line_addr: u64) -> impl Iterator<Item = usize> + '_ {
        let mask = self
            .lines
            .get(&line_addr)
            .map(|e| e.holders & !(1u64 << core))
            .unwrap_or(0);
        (0..64usize).filter(move |i| mask & (1u64 << i) != 0)
    }

    /// Forgets a line entirely (e.g. when the LLC evicts it). Conservative:
    /// private copies may outlive LLC residency in real inclusive caches;
    /// dropping the entry only loses future hop accounting for that line.
    pub fn drop_line(&mut self, line_addr: u64) {
        self.lines.remove(&line_addr);
    }

    /// Number of tracked lines (for tests and memory diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_reads_cost_nothing() {
        let mut d = Directory::new();
        assert_eq!(d.access(0, 0x40, false), CoherenceAction::default());
        assert_eq!(d.access(0, 0x40, false), CoherenceAction::default());
        assert_eq!(d.access(0, 0x40, true), CoherenceAction::default());
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.access(0, 0x40, false);
        d.access(1, 0x40, false);
        d.access(2, 0x40, false);
        let a = d.access(3, 0x40, true);
        assert_eq!(a.remote_hops, 3);
        assert!(!a.dirty_transfer);
        // After the write, only core 3 holds it.
        assert_eq!(d.other_holders(3, 0x40).count(), 0);
    }

    #[test]
    fn read_of_modified_line_snoops_owner() {
        let mut d = Directory::new();
        d.access(0, 0x40, true);
        let a = d.access(1, 0x40, false);
        assert_eq!(a.remote_hops, 1);
        assert!(a.dirty_transfer);
        // Second read is now free: line is shared-clean.
        let a2 = d.access(2, 0x40, false);
        assert_eq!(a2.remote_hops, 0);
    }

    #[test]
    fn write_after_remote_write_transfers_dirty() {
        let mut d = Directory::new();
        d.access(0, 0x40, true);
        let a = d.access(1, 0x40, true);
        assert_eq!(a.remote_hops, 1);
        assert!(a.dirty_transfer);
    }

    #[test]
    fn owner_rewrite_is_free() {
        let mut d = Directory::new();
        d.access(0, 0x40, true);
        let a = d.access(0, 0x40, true);
        assert_eq!(a, CoherenceAction::default());
    }

    #[test]
    fn drop_line_resets_state() {
        let mut d = Directory::new();
        d.access(0, 0x40, true);
        d.drop_line(0x40);
        assert_eq!(d.tracked_lines(), 0);
        let a = d.access(1, 0x40, true);
        assert_eq!(a, CoherenceAction::default());
    }
}
