//! PMU-style counters matching the quantities reported in the paper's
//! Tables 1–3.

/// The counter set the paper reports per run.
///
/// `cycles` and `instructions` are accumulated by the machine's cost model;
/// the miss counters distinguish loads from stores the way `perf`'s
/// `LLC-load-misses` / `LLC-store-misses` / `dTLB-load-misses` /
/// `dTLB-store-misses` events do.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PmuCounters {
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions (memory accesses count as one instruction each).
    pub instructions: u64,
    /// L1d misses on loads.
    pub l1d_load_misses: u64,
    /// L1d misses on stores.
    pub l1d_store_misses: u64,
    /// Shared-LLC misses on loads.
    pub llc_load_misses: u64,
    /// Shared-LLC misses on stores.
    pub llc_store_misses: u64,
    /// First-level dTLB misses on loads (whether or not the STLB hits).
    pub dtlb_load_misses: u64,
    /// First-level dTLB misses on stores.
    pub dtlb_store_misses: u64,
    /// STLB misses (page walks) on any access.
    pub page_walks: u64,
    /// Atomic read-modify-write operations executed.
    pub atomic_rmws: u64,
    /// Coherence invalidations/snoops this core caused on other cores.
    pub coherence_events: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued (including atomics).
    pub stores: u64,
    /// LLC misses attributed to allocator-metadata accesses.
    pub meta_llc_misses: u64,
    /// LLC misses attributed to user-data accesses.
    pub user_llc_misses: u64,
}

impl PmuCounters {
    /// Misses per kilo-instruction for an arbitrary miss counter.
    pub fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// `LLC-load-MPKI` as in Table 1.
    pub fn llc_load_mpki(&self) -> f64 {
        self.mpki(self.llc_load_misses)
    }

    /// `LLC-store-MPKI` as in Table 1.
    pub fn llc_store_mpki(&self) -> f64 {
        self.mpki(self.llc_store_misses)
    }

    /// `dTLB-load-MPKI` as in Table 1.
    pub fn dtlb_load_mpki(&self) -> f64 {
        self.mpki(self.dtlb_load_misses)
    }

    /// `dTLB-store-MPKI` as in Table 1.
    pub fn dtlb_store_mpki(&self) -> f64 {
        self.mpki(self.dtlb_store_misses)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Element-wise sum, used to aggregate per-core counters into a
    /// machine-wide view.
    pub fn merge(&self, other: &PmuCounters) -> PmuCounters {
        PmuCounters {
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            l1d_load_misses: self.l1d_load_misses + other.l1d_load_misses,
            l1d_store_misses: self.l1d_store_misses + other.l1d_store_misses,
            llc_load_misses: self.llc_load_misses + other.llc_load_misses,
            llc_store_misses: self.llc_store_misses + other.llc_store_misses,
            dtlb_load_misses: self.dtlb_load_misses + other.dtlb_load_misses,
            dtlb_store_misses: self.dtlb_store_misses + other.dtlb_store_misses,
            page_walks: self.page_walks + other.page_walks,
            atomic_rmws: self.atomic_rmws + other.atomic_rmws,
            coherence_events: self.coherence_events + other.coherence_events,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            meta_llc_misses: self.meta_llc_misses + other.meta_llc_misses,
            user_llc_misses: self.user_llc_misses + other.user_llc_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_is_per_thousand_instructions() {
        let c = PmuCounters {
            instructions: 2_000,
            llc_load_misses: 3,
            ..Default::default()
        };
        assert!((c.llc_load_mpki() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mpki_zero_when_no_instructions() {
        let c = PmuCounters::default();
        assert_eq!(c.llc_load_mpki(), 0.0);
        assert_eq!(c.ipc(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = PmuCounters {
            cycles: 10,
            instructions: 5,
            llc_load_misses: 1,
            ..Default::default()
        };
        let b = PmuCounters {
            cycles: 7,
            instructions: 2,
            llc_store_misses: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.cycles, 17);
        assert_eq!(m.instructions, 7);
        assert_eq!(m.llc_load_misses, 1);
        assert_eq!(m.llc_store_misses, 4);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let a = PmuCounters {
            cycles: 10,
            instructions: 5,
            dtlb_load_misses: 9,
            meta_llc_misses: 2,
            ..Default::default()
        };
        assert_eq!(a.merge(&PmuCounters::default()), a);
    }
}
