//! Criterion bench for Figure 2: aggregated vs segregated metadata layout
//! under identical placement (see `repro fig2` for the measured table).

use criterion::{criterion_group, criterion_main, Criterion};
use ngm_sim::{Machine, MachineConfig};
use ngm_simalloc::layout::LayoutModel;
use ngm_simalloc::run;
use ngm_workloads::churn::{self, ChurnParams};

fn fig2(c: &mut Criterion) {
    let events = churn::collect(&ChurnParams {
        total_allocs: 5_000,
        touch_percent: 100,
        ..ChurnParams::tiny()
    });
    let mut g = c.benchmark_group("fig2_layout");
    g.sample_size(10);
    g.bench_function("aggregated", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::a72(1));
            let mut model = LayoutModel::aggregated();
            run(&mut machine, &mut model, events.iter().copied()).wall_cycles
        })
    });
    g.bench_function("segregated", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::a72(1));
            let mut model = LayoutModel::segregated();
            run(&mut machine, &mut model, events.iter().copied()).wall_cycles
        })
    });
    g.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
