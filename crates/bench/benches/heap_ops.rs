//! Microbenchmarks of the real heap substrate: alloc/free hot paths for
//! each layout and wrapper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ngm_heap::{AggregatedHeap, Heap, LockedHeap, SegregatedHeap};
use std::alloc::Layout;

fn heap_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_ops");
    for size in [16usize, 128, 1024, 8192] {
        let layout = Layout::from_size_align(size, 8).expect("valid");
        g.bench_with_input(
            BenchmarkId::new("segregated", size),
            &layout,
            |b, &layout| {
                let mut h = SegregatedHeap::new(1);
                b.iter(|| {
                    let p = h.allocate(layout).expect("alloc");
                    // SAFETY: freed immediately, exactly once.
                    unsafe { h.deallocate(p, layout) };
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("aggregated", size),
            &layout,
            |b, &layout| {
                let mut h = AggregatedHeap::new(2);
                b.iter(|| {
                    let p = h.allocate(layout).expect("alloc");
                    // SAFETY: freed immediately, exactly once.
                    unsafe { h.deallocate(p, layout) };
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("locked", size), &layout, |b, &layout| {
            let h = LockedHeap::new(SegregatedHeap::new(3));
            b.iter(|| {
                let p = h.allocate(layout).expect("alloc");
                // SAFETY: freed immediately, exactly once.
                unsafe { h.deallocate(p, layout) };
            })
        });
    }
    g.finish();
}

criterion_group!(benches, heap_ops);
criterion_main!(benches);
