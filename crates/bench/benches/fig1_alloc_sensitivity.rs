//! Criterion bench for Figure 1: xalanc execution under each allocator
//! model. The measured quantity is simulator throughput; the printed
//! simulated-cycle ratios are the figure itself (see `repro fig1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ngm_simalloc::{run_kind_warm, ModelKind};
use ngm_workloads::xalanc::{self, XalancParams};

fn fig1(c: &mut Criterion) {
    let params = XalancParams::tiny();
    let (events, warmup) = xalanc::collect_with_warmup(&params);
    let mut g = c.benchmark_group("fig1_alloc_sensitivity");
    g.sample_size(10);
    for kind in ModelKind::BASELINES {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| run_kind_warm(kind, 1, events.iter().copied(), warmup).wall_cycles)
            },
        );
    }
    g.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
