//! Criterion bench for ablation A: client wait strategy vs allocation
//! round-trip latency on the real offload runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ngm_core::NgmConfig;
use ngm_offload::WaitStrategy;

fn ablation_wait(c: &mut Criterion) {
    let layout = std::alloc::Layout::from_size_align(64, 8).expect("valid");
    let mut g = c.benchmark_group("ablation_wait");
    g.sample_size(10);
    for (label, wait) in [
        ("spin", WaitStrategy::Spin),
        ("spin_yield", WaitStrategy::SpinYield { spins: 64 }),
        ("backoff", WaitStrategy::Backoff),
    ] {
        // On single-core machines a pure-spin client starves the service;
        // skip it there rather than benchmark scheduler timeouts.
        if matches!(wait, WaitStrategy::Spin) && ngm_offload::available_cores() < 2 {
            continue;
        }
        let ngm = NgmConfig::new()
            .with_client_wait(wait)
            .build()
            .expect("valid config");
        let mut h = ngm.handle();
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                let p = h.alloc(layout).expect("alloc");
                // SAFETY: freed immediately, exactly once.
                unsafe { h.dealloc(p, layout) };
            })
        });
        drop(h);
        drop(ngm);
    }
    g.finish();
}

criterion_group!(benches, ablation_wait);
criterion_main!(benches);
