//! Criterion bench for Table 2: xmalloc on the TCMalloc model across
//! thread counts (see `repro table2` for the PMU table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ngm_simalloc::{run_kind, ModelKind};
use ngm_workloads::xmalloc::{self, XmallocParams};

fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_xmalloc_threads");
    g.sample_size(10);
    for threads in [1u8, 2, 4, 8] {
        let params = XmallocParams::tiny().with_threads(threads);
        let events = xmalloc::collect(&params);
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &events,
            |b, events| {
                b.iter(|| {
                    run_kind(
                        ModelKind::TcMalloc,
                        threads as usize,
                        events.iter().copied(),
                    )
                    .total
                    .llc_load_misses
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
