//! Criterion bench for Table 3: the real heaps behind the prototype
//! comparison — sharded (mimalloc-style) vs the offloaded NGM runtime —
//! on the xalanc workload (see `repro table3` for the simulated PMU view).

use criterion::{criterion_group, criterion_main, Criterion};
use ngm_bench::replay::{replay_heap, replay_ngm};
use ngm_workloads::xalanc::{self, XalancParams};

fn table3(c: &mut Criterion) {
    let events = xalanc::collect(&XalancParams::tiny());
    let mut g = c.benchmark_group("table3_ngm_vs_mimalloc");
    g.sample_size(10);
    g.bench_function("sharded_mimalloc_style", |b| {
        b.iter(|| {
            let sharded = ngm_heap::ShardedHeap::new(1);
            let mut h = sharded.handle(0);
            replay_heap(&mut h, events.iter().copied()).checksum
        })
    });
    g.bench_function("ngm_offloaded", |b| {
        b.iter(|| {
            let ngm = ngm_core::Ngm::start();
            let mut h = ngm.handle();
            let cs = replay_ngm(&mut h, events.iter().copied()).checksum;
            drop(h);
            drop(ngm);
            cs
        })
    });
    g.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
