//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT...] [--scale N] [--no-prototype] [--hw]
//!
//! EXPERIMENT: all (default) | fig1 | table1 | table2 | fig2 | table3
//!           | model41 | ablations | batch | telemetry | pmu | shards
//!           | elastic (shard count vs client ramp on the elastic tier)
//!           | spans (request-lifecycle phase breakdown)
//!           | obs (live observer endpoints + flight-recording replay)
//!           | conns (connection server: blocking vs completion-based
//!             front-end at equal client counts)
//!           | faults (needs --features faultinject to arm the hooks)
//! --scale N: multiply workload sizes by N (default 1; paper-style
//!            stability from ~4)
//! --no-prototype: skip the real-runtime wall-clock part of table3
//! --hw: additionally measure table1/table2 on the host PMU while the
//!       replay runs, printing sim and hardware (or labeled software-
//!       fallback) columns side by side
//! ```

use ngm_bench::experiments::{
    ablations, conns, elastic, faults, fig1, fig2, model41, obs, pmu, shards, spans, table1,
    table2, table3, telemetry,
};
use ngm_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale(1);
    let mut with_prototype = true;
    let mut with_hw = false;
    let mut experiments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale expects a positive integer");
                        std::process::exit(2);
                    });
                scale = Scale(n.max(1));
            }
            "--no-prototype" => with_prototype = false,
            "--hw" => with_hw = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [all|fig1|table1|table2|fig2|table3|model41|ablations|batch|telemetry|pmu|shards|elastic|spans|obs|conns|faults]... [--scale N] [--no-prototype] [--hw]"
                );
                return;
            }
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }

    let want = |name: &str| experiments.iter().any(|e| e == name || e == "all");

    println!("NextGen-Malloc reproduction harness (scale {}x)", scale.0);
    println!("================================================\n");

    if want("fig1") {
        println!("{}", fig1::run(scale).render());
    }
    if want("table1") {
        println!("{}", table1::run(scale).render());
        if with_hw {
            println!("{}", table1::run_hw(scale).render());
        }
    }
    if want("table2") {
        println!("{}", table2::run(scale).render());
        if with_hw {
            println!("{}", table2::run_hw(scale).render());
        }
    }
    if want("fig2") {
        println!("{}", fig2::run_fig2(scale).render());
    }
    if want("table3") {
        println!("{}", table3::run(scale, with_prototype).render());
    }
    if want("model41") {
        println!("{}", model41::run().render());
    }
    let real_ops = 20_000u32.saturating_mul(scale.0);
    if want("ablations") {
        println!("{}", ablations::render_all(scale, real_ops));
    }
    // "batch" re-renders just the batched-front-end ablation ("all"
    // already includes it via the full ablation set).
    if experiments.iter().any(|e| e == "batch") {
        println!("{}", ablations::render_batched(scale, real_ops));
    }
    if want("telemetry") {
        println!("{}", telemetry::run(real_ops));
    }
    if want("pmu") {
        println!("{}", pmu::run(scale, real_ops));
    }
    if want("shards") {
        println!("{}", shards::run(scale).render());
        if with_hw {
            println!("{}", shards::run_hw(scale));
        }
    }
    if want("elastic") {
        println!("{}", elastic::run(scale).render());
        if with_hw {
            println!("{}", elastic::run_hw(scale));
        }
    }
    if want("spans") {
        println!("{}", spans::run(scale).render());
        if with_hw {
            println!("{}", spans::run_hw(scale));
        }
    }
    if want("obs") {
        println!("{}", obs::run(scale).render());
        if with_hw {
            println!("{}", obs::run_hw(scale));
        }
    }
    if want("conns") {
        println!("{}", conns::run(scale).render());
        if with_hw {
            println!("{}", conns::run_hw(scale));
        }
    }
    if want("faults") {
        println!("{}", faults::run(scale));
    }
}
