//! Replays workload event streams against the *real* heaps for
//! wall-clock measurements (Table 3's prototype side and the heap
//! microbenches).
//!
//! Only single-threaded streams are replayed here — the multi-threaded
//! real-heap paths are exercised by the integration tests and the
//! `allocator_shootout` example, where thread plumbing does not distort
//! timing.

use std::alloc::Layout;
use std::collections::HashMap;
use std::ptr::NonNull;
use std::time::{Duration, Instant};

use ngm_core::NgmHandle;
use ngm_heap::Heap;
use ngm_workloads::Event;

/// Outcome of a real replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOutcome {
    /// Wall-clock time of the replay.
    pub elapsed: Duration,
    /// Allocations performed.
    pub mallocs: u64,
    /// Frees performed.
    pub frees: u64,
    /// Bytes touched.
    pub bytes_touched: u64,
    /// Checksum of touched data (defeats dead-code elimination and
    /// doubles as a correctness witness: equal across allocators).
    pub checksum: u64,
}

fn layout_for(size: u32) -> Layout {
    Layout::from_size_align(size.max(1) as usize, 8).expect("valid layout")
}

/// Touches `len` bytes at `p + offset`, returning a checksum.
///
/// # Safety
///
/// The block must be live and at least `offset + len` bytes.
unsafe fn touch(p: NonNull<u8>, offset: u32, len: u32, write: bool, round: u64) -> u64 {
    let mut sum = 0u64;
    let base = p.as_ptr() as usize + offset as usize;
    let mut i = 0u32;
    while i < len {
        let q = (base + i as usize) as *mut u8;
        if write {
            // SAFETY: in-bounds per contract.
            unsafe { q.write((round as u8).wrapping_add(i as u8)) };
        } else {
            // SAFETY: in-bounds per contract.
            sum = sum.wrapping_add(u64::from(unsafe { q.read() }));
        }
        i += 8;
    }
    sum
}

fn compute(amount: u32) {
    // A light stand-in: amount/64 multiply-accumulate iterations. The
    // absolute scale cancels across allocators; it exists so allocator
    // work does not dominate wall time the way it never dominates the
    // paper's workloads.
    let mut acc = 0u64;
    for i in 0..(amount / 64).max(1) {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(u64::from(i));
    }
    std::hint::black_box(acc);
}

/// Replays a single-threaded stream against a [`Heap`].
///
/// # Panics
///
/// Panics on malformed streams or allocation failure.
pub fn replay_heap<H: Heap>(heap: &mut H, events: impl Iterator<Item = Event>) -> ReplayOutcome {
    let mut live: HashMap<u64, (NonNull<u8>, Layout)> = HashMap::new();
    let mut out = ReplayOutcome {
        elapsed: Duration::ZERO,
        mallocs: 0,
        frees: 0,
        bytes_touched: 0,
        checksum: 0,
    };
    let start = Instant::now();
    let mut round = 0u64;
    for e in events {
        match e {
            Event::Malloc { id, size, .. } => {
                let l = layout_for(size);
                let p = heap.allocate(l).expect("allocation failed in replay");
                live.insert(id, (p, l));
                out.mallocs += 1;
            }
            Event::Free { id, .. } => {
                let (p, l) = live.remove(&id).expect("free of dead id");
                // SAFETY: p came from this heap with layout l, freed once.
                unsafe { heap.deallocate(p, l) };
                out.frees += 1;
            }
            Event::Touch {
                id,
                offset,
                len,
                write,
                ..
            } => {
                let (p, _l) = live[&id];
                round += 1;
                // SAFETY: generators keep touches in bounds (validated by
                // property tests in ngm-workloads).
                out.checksum = out
                    .checksum
                    .wrapping_add(unsafe { touch(p, offset, len, write, round) });
                out.bytes_touched += u64::from(len);
            }
            Event::Compute { amount, .. } => compute(amount),
        }
    }
    out.elapsed = start.elapsed();
    assert!(
        live.is_empty(),
        "replayed stream leaked {} blocks",
        live.len()
    );
    out
}

/// Replays a single-threaded stream through a NextGen-Malloc handle
/// (synchronous alloc, asynchronous free — the offloaded prototype).
///
/// # Panics
///
/// Panics on malformed streams or allocation failure.
pub fn replay_ngm(handle: &mut NgmHandle, events: impl Iterator<Item = Event>) -> ReplayOutcome {
    let mut live: HashMap<u64, (NonNull<u8>, Layout)> = HashMap::new();
    let mut out = ReplayOutcome {
        elapsed: Duration::ZERO,
        mallocs: 0,
        frees: 0,
        bytes_touched: 0,
        checksum: 0,
    };
    let start = Instant::now();
    let mut round = 0u64;
    for e in events {
        match e {
            Event::Malloc { id, size, .. } => {
                let l = layout_for(size);
                let p = handle.alloc(l).expect("NGM allocation failed");
                live.insert(id, (p, l));
                out.mallocs += 1;
            }
            Event::Free { id, .. } => {
                let (p, l) = live.remove(&id).expect("free of dead id");
                // SAFETY: p came from this handle's allocator with layout
                // l; freed once, not used after.
                unsafe { handle.dealloc(p, l) };
                out.frees += 1;
            }
            Event::Touch {
                id,
                offset,
                len,
                write,
                ..
            } => {
                let (p, _l) = live[&id];
                round += 1;
                // SAFETY: in-bounds per generator contract.
                out.checksum = out
                    .checksum
                    .wrapping_add(unsafe { touch(p, offset, len, write, round) });
                out.bytes_touched += u64::from(len);
            }
            Event::Compute { amount, .. } => compute(amount),
        }
    }
    out.elapsed = start.elapsed();
    assert!(
        live.is_empty(),
        "replayed stream leaked {} blocks",
        live.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngm_heap::{AggregatedHeap, SegregatedHeap};
    use ngm_workloads::xalanc::{self, XalancParams};

    #[test]
    fn real_replay_checksums_agree_across_heaps() {
        let events = xalanc::collect(&XalancParams::tiny());
        let mut seg = SegregatedHeap::new(1);
        let mut agg = AggregatedHeap::new(2);
        let a = replay_heap(&mut seg, events.iter().copied());
        let b = replay_heap(&mut agg, events.iter().copied());
        assert_eq!(a.mallocs, b.mallocs);
        assert_eq!(a.checksum, b.checksum, "data written must read back equal");
    }

    #[test]
    fn ngm_replay_matches_heap_replay() {
        let events = xalanc::collect(&XalancParams::tiny());
        let mut seg = SegregatedHeap::new(1);
        let direct = replay_heap(&mut seg, events.iter().copied());

        let ngm = ngm_core::Ngm::start();
        let mut h = ngm.handle();
        let off = replay_ngm(&mut h, events.iter().copied());
        drop(h);
        let down = ngm.shutdown();
        assert_eq!(off.checksum, direct.checksum);
        assert_eq!(down.service.allocs, off.mallocs);
        assert_eq!(down.heap.live_blocks, 0, "all frees drained at shutdown");
    }
}
