//! Reproduction harness: one module per table/figure of the paper.
//!
//! The `repro` binary drives these; the Criterion benches reuse the same
//! kernels at reduced scale. See `EXPERIMENTS.md` at the repository root
//! for the paper-vs-measured record each function regenerates.

#![warn(missing_docs)]

pub mod executor;
pub mod experiments;
pub mod hw;
pub mod replay;
pub mod report;
pub mod trace;

/// Scale factor applied to workload sizes (1 = quick defaults; the paper
/// runs are statistically stable from ~4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub u32);

impl Scale {
    /// Multiplies a base count.
    pub fn apply(self, base: u32) -> u32 {
        base.saturating_mul(self.0.max(1))
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale(1)
    }
}
