//! Span phase breakdown: where a request's round trip actually goes.
//!
//! Every unbatched `alloc` round trip is stamped at six lifecycle
//! boundaries (enqueue → ring-resident → claimed → served → published →
//! observed), and the five gaps land in the per-shard
//! `ngm_phase_*_cycles` histograms. This experiment drives the live tier
//! per shard count and renders the phase table: sum, share of the round
//! trip, and windowed percentiles per phase, in cycles and nanoseconds.
//!
//! The load-bearing invariant — checked here and asserted by the smoke
//! test — is **coverage**: the five phase sums partition the round trip,
//! so their total must equal the `ngm_call_cycles` sum (the stamps are
//! clamped into each call's `[t0, t5]`, so the identity is exact by
//! construction; the acceptance bar is ±10%). The `--hw` variant reruns
//! the same shape with PMU sessions armed, confirming the four extra
//! `rdtsc` stamps don't distort the round trip they measure.

use std::sync::Arc;

use ngm_offload::{PHASES, PHASE_NAMES};
use ngm_telemetry::clock::cycles_to_ns;
use ngm_telemetry::hist::HistogramSnapshot;

use crate::report::Table;
use crate::Scale;

/// Shard counts crossed by the breakdown.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Client threads driving each row.
pub const CLIENTS: usize = 2;

/// One shard count's phase breakdown, merged across shards.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Service shards in the tier.
    pub shards: usize,
    /// Unbatched calls measured.
    pub calls: u64,
    /// Sum of `ngm_call_cycles` — the whole round trips.
    pub call_sum: u64,
    /// Windowed snapshot per phase, [`PHASE_NAMES`] order.
    pub phases: Vec<HistogramSnapshot>,
}

impl SpanRow {
    /// Total cycles across all five phases.
    #[must_use]
    pub fn phase_total(&self) -> u64 {
        self.phases.iter().map(HistogramSnapshot::sum).sum()
    }

    /// Phase-sum coverage of the call sum (1.0 = exact partition).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.call_sum == 0 {
            return 0.0;
        }
        self.phase_total() as f64 / self.call_sum as f64
    }
}

/// The full experiment: one row per shard count.
#[derive(Debug, Clone)]
pub struct SpansReport {
    /// Rows in [`SHARD_COUNTS`] order.
    pub rows: Vec<SpanRow>,
}

/// Drives an unbatched alloc/free churn (batch 1 so every alloc is one
/// stamped round trip) and reads the merged phase histograms back
/// through the metrics exporter — the same series Prometheus would
/// scrape.
fn run_row(shards: usize, scale: Scale, profile: bool) -> (SpanRow, Option<String>) {
    use std::alloc::Layout;

    let ngm = Arc::new(
        ngm_core::NgmConfig::new()
            .with_shards(shards)
            .with_placement(ngm_core::CorePlacement::Unpinned)
            .with_profile(profile)
            .build()
            .expect("valid config"),
    );
    let per_thread = 10_000usize * scale.0.max(1) as usize;
    let joins: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let ngm = Arc::clone(&ngm);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                for i in 0..per_thread {
                    let size = 16 * (1 + (i + t) % 8);
                    let l = Layout::from_size_align(size, 8).expect("valid");
                    let p = h.alloc(l).expect("alloc");
                    // SAFETY: block just allocated, freed once.
                    unsafe { h.dealloc(p, l) };
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("worker");
    }
    let m = ngm.metrics();
    let calls = m
        .get_histogram("ngm_call_cycles")
        .expect("call histogram exported");
    let phases: Vec<HistogramSnapshot> = PHASE_NAMES
        .iter()
        .map(|name| {
            m.get_histogram(&format!("ngm_phase_{name}_cycles"))
                .expect("phase histogram exported")
                .clone()
        })
        .collect();
    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let pmu = profile.then(|| {
        ngm.pmu_report()
            .map_or_else(|| "(no PMU readings deposited)".into(), |r| r.render())
    });
    let down = ngm.shutdown();
    assert!(down.clean() && down.balanced(), "spans run stayed exact");
    (
        SpanRow {
            shards,
            calls: calls.count(),
            call_sum: calls.sum(),
            phases,
        },
        pmu,
    )
}

/// Runs the phase breakdown across [`SHARD_COUNTS`].
pub fn run(scale: Scale) -> SpansReport {
    SpansReport {
        rows: SHARD_COUNTS
            .iter()
            .map(|&shards| run_row(shards, scale, false).0)
            .collect(),
    }
}

impl SpansReport {
    /// Renders the per-shard-count phase tables and coverage lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Spans — request-lifecycle phase breakdown ({CLIENTS} clients, unbatched)\n"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "### {} shard(s): {} calls, round-trip sum {} cycles",
                row.shards, row.calls, row.call_sum
            );
            let mut t = Table::new(&["phase", "sum cycles", "share", "p50", "p99", "p50 ns"]);
            let total = row.phase_total().max(1);
            for (i, name) in PHASE_NAMES.iter().enumerate() {
                debug_assert!(i < PHASES);
                let h = &row.phases[i];
                t.row(vec![
                    (*name).to_string(),
                    h.sum().to_string(),
                    format!("{:.1}%", 100.0 * h.sum() as f64 / total as f64),
                    h.p50().to_string(),
                    h.p99().to_string(),
                    cycles_to_ns(h.p50()).to_string(),
                ]);
            }
            let _ = writeln!(out, "{}", t.render());
            let _ = writeln!(
                out,
                "phase-sum coverage of call sum: {:.4} (1.0 = exact partition)\n",
                row.coverage()
            );
        }
        out
    }
}

/// The `--hw` variant: the same breakdown with PMU sessions armed, so
/// the phase table and the service-vs-client counter report come from
/// one run.
pub fn run_hw(scale: Scale) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "## Spans — phase breakdown under PMU\n");
    for &shards in &SHARD_COUNTS {
        let (row, pmu) = run_row(shards, scale, true);
        let _ = writeln!(
            out,
            "### {shards} shard(s): {} calls, coverage {:.4}",
            row.calls,
            row.coverage()
        );
        if let Some(pmu) = pmu {
            let _ = writeln!(out, "{pmu}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_sums_partition_the_round_trip() {
        let (row, pmu) = run_row(2, Scale(1), false);
        assert!(pmu.is_none());
        assert_eq!(row.calls, (CLIENTS * 10_000) as u64);
        let cov = row.coverage();
        assert!(
            (cov - 1.0).abs() < 0.10,
            "phase sum within 10% of call sum (got {cov}): exact partition expected"
        );
    }

    #[test]
    fn report_renders_phase_names_and_coverage() {
        let report = SpansReport {
            rows: vec![SpanRow {
                shards: 1,
                calls: 4,
                call_sum: 400,
                phases: (0..PHASES)
                    .map(|_| {
                        let h = ngm_telemetry::hist::LatencyHistogram::new();
                        h.record(20);
                        h.snapshot()
                    })
                    .collect(),
            }],
        };
        let text = report.render();
        for name in PHASE_NAMES {
            assert!(text.contains(name), "{text}");
        }
        assert!(text.contains("coverage"), "{text}");
    }
}
