//! Table 1: PMU counters for `xalancbmk` under the four allocators.
//!
//! Paper shape: dTLB-load misses vary more than 10× and LLC-load misses
//! ~4× between PTMalloc2 and the modern allocators; instruction counts
//! are nearly equal; cycles differ ~1.7×.

use ngm_pmu::PmuReport;
use ngm_sim::PmuCounters;
use ngm_simalloc::{run_kind_warm, ModelKind};
use ngm_workloads::xalanc;

use crate::hw::{self, MpkiDelta};
use crate::report::{mpki, sci, Table};
use crate::Scale;

/// Row extractor over simulated PMU counters.
type CounterFn = fn(&PmuCounters) -> f64;

/// One allocator column of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Col {
    /// Allocator name.
    pub name: &'static str,
    /// Machine-wide counters for the run.
    pub counters: PmuCounters,
}

/// The table's data.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One column per allocator, paper order.
    pub cols: Vec<Table1Col>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table1 {
    from_results(super::run_xalanc_baselines(scale))
}

/// Builds the table from pre-computed runs.
pub fn from_results(results: Vec<ngm_simalloc::RunResult>) -> Table1 {
    Table1 {
        cols: results
            .iter()
            .map(|r| Table1Col {
                name: r.name,
                counters: r.total,
            })
            .collect(),
    }
}

impl Table1 {
    /// Ratio of one metric between PTMalloc2 and the best modern
    /// allocator.
    pub fn pt_over_best(&self, metric: impl Fn(&PmuCounters) -> f64) -> f64 {
        let pt = metric(
            &self
                .cols
                .iter()
                .find(|c| c.name == "PTMalloc2")
                .expect("PTMalloc2 present")
                .counters,
        );
        let best = self
            .cols
            .iter()
            .filter(|c| c.name != "PTMalloc2")
            .map(|c| metric(&c.counters))
            .fold(f64::INFINITY, f64::min);
        pt / best
    }

    /// Renders both halves of the paper's table: absolute counts and
    /// MPKI.
    pub fn render(&self) -> String {
        let names: Vec<&str> = self.cols.iter().map(|c| c.name).collect();
        let mut header = vec!["metric"];
        header.extend(&names);

        let mut counts = Table::new(&header);
        let rows: [(&str, CounterFn); 6] = [
            ("cycles", |c| c.cycles as f64),
            ("instructions", |c| c.instructions as f64),
            ("LLC-load-misses", |c| c.llc_load_misses as f64),
            ("LLC-store-misses", |c| c.llc_store_misses as f64),
            ("dTLB-load-misses", |c| c.dtlb_load_misses as f64),
            ("dTLB-store-misses", |c| c.dtlb_store_misses as f64),
        ];
        for (label, get) in rows {
            let mut row = vec![label.to_string()];
            row.extend(self.cols.iter().map(|c| sci(get(&c.counters))));
            counts.row(row);
        }

        let mut rates = Table::new(&header);
        let rate_rows: [(&str, CounterFn); 4] = [
            ("LLC-load-MPKI", PmuCounters::llc_load_mpki),
            ("LLC-store-MPKI", PmuCounters::llc_store_mpki),
            ("dTLB-load-MPKI", PmuCounters::dtlb_load_mpki),
            ("dTLB-store-MPKI", PmuCounters::dtlb_store_mpki),
        ];
        for (label, get) in rate_rows {
            let mut row = vec![label.to_string()];
            row.extend(self.cols.iter().map(|c| mpki(get(&c.counters))));
            rates.row(row);
        }

        format!(
            "Table 1: PMU data for xalancbmk\n{}\n{}\nPTMalloc2/best ratios: dTLB-load {:.1}x [paper >10x], LLC-load {:.1}x [paper ~4x]\n",
            counts.render(),
            rates.render(),
            self.pt_over_best(|c| c.dtlb_load_misses as f64),
            self.pt_over_best(|c| c.llc_load_misses as f64),
        )
    }
}

/// Table 1 measured twice per allocator: the simulator's counters and
/// the host PMU counting the same replay.
#[derive(Debug)]
pub struct Table1Hw {
    /// Side-by-side report: `<name>:sim/sw` next to `<name>:run/hw`
    /// (or `:run/sw` on the fed-fallback path).
    pub report: PmuReport,
    /// Per-allocator, per-miss-event MPKI comparisons (the CI artifact).
    pub deltas: Vec<MpkiDelta>,
}

/// Runs Table 1 with hardware measurement: every allocator model's
/// replay executes under a [`ngm_pmu::PmuSession`], and the table prints
/// the simulated and measured column for each, backend-labeled. Never
/// panics when perf is unavailable — the measured column degrades to the
/// sim-fed software backend.
pub fn run_hw(scale: Scale) -> Table1Hw {
    run_hw_with(&super::xalanc_params(scale))
}

/// As [`run_hw`] with explicit workload parameters (tests use small
/// ones).
pub fn run_hw_with(params: &ngm_workloads::xalanc::XalancParams) -> Table1Hw {
    let (events, warmup) = xalanc::collect_with_warmup(params);
    let mut report =
        PmuReport::new("Table 1 (hardware): xalancbmk replay, simulator vs host PMU per allocator");
    let mut deltas = Vec::new();
    for kind in ModelKind::BASELINES {
        let (r, measured) = hw::measure_replay(
            || run_kind_warm(kind, 1, events.iter().copied(), warmup),
            |r| r.total,
        );
        let sim = hw::sim_reading(&r.total);
        deltas.extend(hw::mpki_deltas(r.name, &sim, &measured));
        report.push(format!("{}:sim", r.name), sim);
        report.push(format!("{}:run", r.name), measured);
    }
    Table1Hw { report, deltas }
}

impl Table1Hw {
    /// Renders the side-by-side table plus the delta lines.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.report.render(),
            hw::render_deltas(&self.deltas)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds() {
        let t = from_results(crate::experiments::run_xalanc_baselines_with(
            &ngm_workloads::xalanc::XalancParams::small(),
        ));
        // Instructions nearly equal (the denominator of MPKI).
        let instr: Vec<f64> = t
            .cols
            .iter()
            .map(|c| c.counters.instructions as f64)
            .collect();
        let spread = instr.iter().copied().fold(0.0f64, f64::max)
            / instr.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1.1, "instruction spread {spread} too wide");

        // PTMalloc2 misses more — the table's whole point.
        assert!(
            t.pt_over_best(|c| c.dtlb_load_misses as f64) > 1.8,
            "dTLB-load ratio too small"
        );
        assert!(
            t.pt_over_best(|c| c.llc_load_misses as f64) > 2.0,
            "LLC-load ratio too small"
        );
        // Cycles follow the paper's direction (muted magnitude; see
        // EXPERIMENTS.md).
        assert!(t.pt_over_best(|c| c.cycles as f64) > 1.05);
    }

    #[test]
    fn render_has_both_subtables() {
        let t = from_results(crate::experiments::run_xalanc_baselines_with(
            &ngm_workloads::xalanc::XalancParams::tiny(),
        ));
        let s = t.render();
        assert!(s.contains("LLC-load-MPKI"));
        assert!(s.contains("dTLB-store-misses"));
    }

    #[test]
    fn hw_table_has_sim_and_measured_columns_for_all_models() {
        // Satellite/acceptance: must not panic when perf is unavailable,
        // and must print both columns for all four allocator models,
        // each labeled with the backend that produced it.
        let t = run_hw_with(&ngm_workloads::xalanc::XalancParams::tiny());
        assert_eq!(t.report.cols.len(), 8, "sim + run column per model");
        let s = t.render();
        for name in ["PTMalloc2", "JeMalloc", "TCMalloc", "Mimalloc"] {
            assert!(
                s.contains(&format!("{name}:sim/sw")),
                "missing sim col:\n{s}"
            );
            assert!(
                s.contains(&format!("{name}:run/hw")) || s.contains(&format!("{name}:run/sw")),
                "missing labeled measured col:\n{s}"
            );
        }
        assert!(s.contains("sim-vs-measured MPKI deltas"), "{s}");
        assert_eq!(t.deltas.len(), 16, "4 models x 4 miss events");
    }
}
