//! Live-observability experiment: what does watching the tier cost,
//! and can the flight recording be trusted?
//!
//! The tentpole claims of the observer (PR 8) are (a) every `/metrics`
//! scrape during an elastic ramp renders validator-clean exposition
//! text, (b) the continuous flight recording's shard-count timeline
//! matches the controller's `Scale` trace events *exactly* (frames are
//! assembled under the same mutex that stamps the events), and (c) the
//! whole apparatus — scrape tick, recorder append, endpoint render —
//! costs less than 1% of the cycles the tier spends serving
//! synchronous calls (`ngm_call_cycles`).
//!
//! The experiment reruns the elastic client ramp (1 → 4 → 16 → 4 → 1
//! churning threads) with the observer as the *only* controller ticker:
//! no driver-side `heat_report()` pumping — the scrape thread does that
//! job, exactly as a Prometheus deployment would. During each stage the
//! driver curls `/metrics` like an external scraper and validates every
//! response. Afterwards it replays the recording offline: reconstruct
//! the serving-count timeline from the `Scale` events, walk the frames
//! in timestamp order, and require frame-vs-event agreement on every
//! single frame. The observability tax is read from the tier's own
//! `ngm_obs_scrape_cycles_total` meter against the merged
//! `ngm_call_cycles` sum.

use std::alloc::Layout;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ngm_core::{CorePlacement, NgmConfig, ObserverConfig, ShardTopology};
use ngm_simalloc::NgmElasticModel;
use ngm_telemetry::export::validate_exposition;
use ngm_telemetry::recorder::{read_recording, RecordFrame};
use ngm_telemetry::server::http_get;
use ngm_telemetry::trace::{TraceEvent, TraceEventKind};

use crate::Scale;

/// Client counts per ramp stage (same ramp as `repro elastic`).
pub const STAGES: [usize; 5] = [1, 4, 16, 4, 1];
/// The elastic tier's resident floor.
pub const ELASTIC_MIN: usize = 1;
/// The elastic tier's ceiling.
pub const ELASTIC_MAX: usize = 8;
/// The observer's scrape (and controller-tick) cadence.
const SCRAPE_EVERY: Duration = Duration::from_millis(5);
/// How often the driver curls `/metrics` during a stage, playing the
/// external Prometheus scraper.
const CURL_EVERY: Duration = Duration::from_millis(25);
/// The acceptance bar: observability cycles as a percentage of the
/// cycles spent inside synchronous calls.
pub const OVERHEAD_BUDGET_PCT: f64 = 1.0;

/// One ramp stage as seen through the observer.
#[derive(Debug, Clone)]
pub struct ObsStageRow {
    /// Churning client threads this stage.
    pub clients: usize,
    /// Width [`NgmElasticModel`] predicts the controller converges to.
    pub predicted_shards: usize,
    /// Serving shards when the stage's churn ended.
    pub live_serving: usize,
    /// `/metrics` scrapes issued by the driver during the stage.
    pub scrapes: usize,
    /// Scrapes that failed transport or the exposition validator.
    pub scrape_failures: usize,
}

/// The full observer report.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// One row per ramp stage, in ramp order.
    pub stages: Vec<ObsStageRow>,
    /// Frames in the flight recording.
    pub frames: usize,
    /// `Scale` trace events the controller emitted over the run.
    pub scale_events: usize,
    /// Whether every frame's serving count matched the count
    /// reconstructed from the `Scale` events at that frame's timestamp.
    pub timeline_matches: bool,
    /// First mismatch, when there is one (diagnostic).
    pub timeline_detail: Option<String>,
    /// Cycles the tier spent on observability (scrapes + recorder +
    /// endpoint renders).
    pub obs_cycles: u64,
    /// Cycles the tier spent inside synchronous calls.
    pub call_cycles: u64,
    /// `obs_cycles / call_cycles` as a percentage.
    pub overhead_pct: f64,
    /// Whether every shard balanced `allocs == frees` at shutdown.
    pub balanced: bool,
}

/// Churns `per_thread` alloc/free rounds on `clients` threads. Unlike
/// the `elastic` experiment there is no driver-side controller pumping:
/// the observer's scrape thread is the only tick source.
fn churn_stage(
    ngm: &Arc<ngm_core::Ngm>,
    clients: usize,
    per_thread: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    let joins: Vec<_> = (0..clients)
        .map(|t| {
            let ngm = Arc::clone(ngm);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut live: Vec<(std::ptr::NonNull<u8>, Layout)> = Vec::new();
                for i in 0..per_thread {
                    let size = 16 * (1 + (i + t) % 8);
                    let l = Layout::from_size_align(size, 8).expect("valid");
                    live.push((h.alloc(l).expect("alloc"), l));
                    if live.len() > 64 {
                        let (p, l) = live.swap_remove((i * 31) % live.len());
                        // SAFETY: live block from this allocator.
                        unsafe { h.dealloc(p, l) };
                    }
                }
                for (p, l) in live {
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, l) };
                }
            })
        })
        .collect();
    joins
}

/// Plays the external scraper against `/metrics` until every worker in
/// `joins` finishes: returns (scrapes, failures).
fn scrape_until_done(
    addr: std::net::SocketAddr,
    joins: &[std::thread::JoinHandle<()>],
) -> (usize, usize) {
    let mut scrapes = 0usize;
    let mut failures = 0usize;
    while !joins.iter().all(std::thread::JoinHandle::is_finished) {
        match http_get(addr, "/metrics") {
            Ok((200, body)) => {
                if validate_exposition(&body).is_err() {
                    failures += 1;
                }
            }
            Ok(_) | Err(_) => failures += 1,
        }
        scrapes += 1;
        std::thread::sleep(CURL_EVERY);
    }
    (scrapes, failures)
}

/// Waits (idle) until the observer-driven controller stops moving the
/// serving count, bounded.
fn settle(ngm: &Arc<ngm_core::Ngm>) -> usize {
    let mut serving = ngm.serving_shards().len();
    let mut stable = 0u32;
    for _ in 0..400 {
        std::thread::sleep(SCRAPE_EVERY);
        let now = ngm.serving_shards().len();
        if now == serving {
            stable += 1;
            if stable > 24 {
                break;
            }
        } else {
            serving = now;
            stable = 0;
        }
    }
    serving
}

/// The serving-count delta a `Scale` event code implies: spawn and
/// drain-abort add a serving shard, drain-begun removes one, retired
/// changes nothing (the shard already left serving at drain-begun).
fn event_delta(code: u64) -> i64 {
    match code {
        1 | 4 => 1,
        2 => -1,
        _ => 0,
    }
}

/// Replays `frames` against the `Scale` events: reconstructs the
/// serving count at each frame's timestamp and requires equality.
/// Returns (matches, first mismatch).
pub fn cross_check_timeline(
    frames: &[RecordFrame],
    events: &[TraceEvent],
) -> (bool, Option<String>) {
    let mut scales: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Scale)
        .collect();
    scales.sort_by_key(|e| e.tsc);
    let mut expected = ELASTIC_MIN as i64;
    let mut next = 0usize;
    for (i, f) in frames.iter().enumerate() {
        while next < scales.len() && scales[next].tsc <= f.tsc {
            expected += event_delta(scales[next].a);
            next += 1;
        }
        if f.serving as i64 != expected {
            return (
                false,
                Some(format!(
                    "frame {i} (tsc {}): recorded serving={} but {} Scale event(s) \
                     by then imply {expected}",
                    f.tsc, f.serving, next
                )),
            );
        }
    }
    (true, None)
}

/// Runs the observed ramp and the offline replay.
pub fn run(scale: Scale) -> ObsReport {
    let per_thread = 20_000usize * scale.0.max(1) as usize;
    let record_path = std::env::temp_dir().join(format!("ngm-obs-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&record_path);

    // Unbatched on purpose: every allocation is one stamped synchronous
    // round trip, so the `ngm_call_cycles` histogram — the overhead
    // denominator — reflects the whole serving workload. (Batched tiers
    // amortize into `ngm_refill_cycles` and leave the call series empty.)
    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(ELASTIC_MIN)
            .elastic(ELASTIC_MIN, ELASTIC_MAX)
            .with_topology(ShardTopology::per_shard())
            .with_placement(CorePlacement::Unpinned)
            .with_trace_capacity(8192)
            .with_observer(
                ObserverConfig::new("127.0.0.1:0")
                    .with_recording(&record_path)
                    .with_scrape_interval(SCRAPE_EVERY),
            )
            .build()
            .expect("valid config"),
    );
    let observer = ngm
        .start_observer()
        .expect("observer binds")
        .expect("config carries an observer");
    let addr = observer.addr();

    let mut stages = Vec::new();
    for &clients in &STAGES {
        let joins = churn_stage(&ngm, clients, per_thread);
        let (scrapes, scrape_failures) = scrape_until_done(addr, &joins);
        for j in joins {
            j.join().expect("worker");
        }
        stages.push(ObsStageRow {
            clients,
            predicted_shards: NgmElasticModel::predicted_shards(clients, ELASTIC_MIN, ELASTIC_MAX),
            live_serving: ngm.serving_shards().len(),
            scrapes,
            scrape_failures,
        });
    }
    settle(&ngm);

    // Freeze the run: stop the observer (no more ticks, no more
    // frames), then read back what it recorded and what the controller
    // logged, and replay one against the other.
    observer.stop();
    let frames = read_recording(&record_path).expect("recording readable");
    let drain = ngm.telemetry().drain_trace();
    let scale_events = drain
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Scale)
        .count();
    let (timeline_matches, timeline_detail) = cross_check_timeline(&frames, &drain.events);

    let m = ngm.metrics();
    let obs_cycles = m.get_counter("ngm_obs_scrape_cycles_total").unwrap_or(0);
    let call_cycles = m
        .get_histogram("ngm_call_cycles")
        .map_or(0, ngm_telemetry::hist::HistogramSnapshot::sum);
    let overhead_pct = obs_cycles as f64 / call_cycles.max(1) as f64 * 100.0;

    let _ = std::fs::remove_file(&record_path);
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    ObsReport {
        stages,
        frames: frames.len(),
        scale_events,
        timeline_matches,
        timeline_detail,
        obs_cycles,
        call_cycles,
        overhead_pct,
        balanced: down.clean() && down.balanced(),
    }
}

impl ObsReport {
    /// Whether every acceptance bar held: all scrapes valid, the
    /// timeline replay exact, and the tax under budget.
    pub fn accepted(&self) -> bool {
        self.stages.iter().all(|s| s.scrape_failures == 0)
            && self.timeline_matches
            && self.overhead_pct < OVERHEAD_BUDGET_PCT
            && self.balanced
    }

    /// Renders the stage table and the verdict lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Live observability — scrape validity, recording fidelity, and tax\n"
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>8} {:>9} {:>9}",
            "clients", "predicted", "serving", "scrapes", "invalid"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>8} {:>9} {:>9}",
                s.clients, s.predicted_shards, s.live_serving, s.scrapes, s.scrape_failures
            );
        }
        let _ = writeln!(
            out,
            "\nflight recording: {} frame(s) vs {} Scale event(s) — timeline exact: {}",
            self.frames, self.scale_events, self.timeline_matches
        );
        if let Some(detail) = &self.timeline_detail {
            let _ = writeln!(out, "  first mismatch: {detail}");
        }
        let _ = writeln!(
            out,
            "observability tax: {} obs cycles / {} call cycles = {:.4}% (budget {OVERHEAD_BUDGET_PCT}%)",
            self.obs_cycles, self.call_cycles, self.overhead_pct
        );
        let _ = writeln!(out, "balanced at shutdown: {}", self.balanced);
        let _ = writeln!(out, "accepted: {}", self.accepted());
        out
    }
}

/// The `--hw` variant: one observed 16-client stage with PMU profiling
/// armed, reporting the hardware counters next to the same scrape
/// validity and overhead readings.
pub fn run_hw(scale: Scale) -> String {
    use std::fmt::Write as _;
    let per_thread = 5_000usize * scale.0.max(1) as usize;
    let record_path = std::env::temp_dir().join(format!("ngm-obs-hw-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&record_path);
    let mut out = String::new();
    let _ = writeln!(out, "## Live observability — hardware counters\n");

    let ngm = Arc::new(
        NgmConfig::new()
            .with_shards(ELASTIC_MIN)
            .elastic(ELASTIC_MIN, ELASTIC_MAX)
            .with_placement(CorePlacement::Unpinned)
            .with_profile(true)
            .with_trace_capacity(8192)
            .build()
            .expect("valid config"),
    );
    let observer = ngm
        .serve_observer(
            ObserverConfig::new("127.0.0.1:0")
                .with_recording(&record_path)
                .with_scrape_interval(SCRAPE_EVERY),
        )
        .expect("observer binds");
    let addr = observer.addr();
    let start = Instant::now();
    let joins = churn_stage(&ngm, 16, per_thread);
    let (scrapes, failures) = scrape_until_done(addr, &joins);
    for j in joins {
        j.join().expect("worker");
    }
    let secs = start.elapsed().as_secs_f64();
    observer.stop();
    let frames = read_recording(&record_path).map_or(0, |f| f.len());
    let report = ngm.pmu_report();
    let m = ngm.metrics();
    let obs_cycles = m.get_counter("ngm_obs_scrape_cycles_total").unwrap_or(0);
    let _ = std::fs::remove_file(&record_path);
    let ngm = Arc::into_inner(ngm).expect("observer released its references");
    let down = ngm.shutdown();
    let _ = writeln!(
        out,
        "### 16 clients for {secs:.2}s — {scrapes} scrape(s), {failures} invalid, \
         {frames} frame(s), {obs_cycles} obs cycles — balanced: {}",
        down.clean() && down.balanced()
    );
    match report {
        Some(r) => {
            let _ = writeln!(out, "{}", r.render());
        }
        None => {
            let _ = writeln!(out, "(no PMU readings deposited — perf events unavailable)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale_event(tsc: u64, code: u64, shard: u64) -> TraceEvent {
        TraceEvent {
            tsc,
            thread: 0,
            kind: TraceEventKind::Scale,
            a: code,
            b: shard,
        }
    }

    fn frame(tsc: u64, serving: u64) -> RecordFrame {
        RecordFrame {
            tsc,
            serving,
            ..RecordFrame::default()
        }
    }

    #[test]
    fn timeline_accepts_matching_frames() {
        let events = [
            scale_event(100, 1, 1), // spawn: 1 -> 2
            scale_event(200, 2, 1), // drain begun: 2 -> 1
            scale_event(300, 3, 1), // retired: no serving change
        ];
        let frames = [frame(50, 1), frame(150, 2), frame(250, 1), frame(350, 1)];
        let (ok, detail) = cross_check_timeline(&frames, &events);
        assert!(ok, "{detail:?}");
    }

    #[test]
    fn timeline_rejects_a_torn_frame() {
        let events = [scale_event(100, 1, 1)];
        let frames = [frame(150, 1)]; // should read 2 after the spawn
        let (ok, detail) = cross_check_timeline(&frames, &events);
        assert!(!ok);
        assert!(detail.expect("mismatch detail").contains("frame 0"));
    }

    #[test]
    fn timeline_counts_drain_abort_back_up() {
        let events = [
            scale_event(100, 1, 1), // spawn: 1 -> 2
            scale_event(200, 2, 1), // drain begun: 2 -> 1
            scale_event(300, 4, 1), // drain aborted: 1 -> 2
        ];
        let frames = [frame(150, 2), frame(250, 1), frame(350, 2)];
        let (ok, detail) = cross_check_timeline(&frames, &events);
        assert!(ok, "{detail:?}");
    }
}
