//! Elastic tier experiment: does the number of rooms track demand?
//!
//! The paper dedicates a fixed set of service cores; the elastic
//! controller (PR 7) spawns and retires shards from live heat telemetry
//! instead. This experiment drives the live runtime through a client
//! ramp (1 → 4 → 16 → 4 → 1 churning threads), pumping the controller
//! on a metrics-scrape cadence the whole way, and records the serving
//! shard count per stage — the tier must widen under the 16-client
//! stage and shrink back down the far side, with every per-shard
//! `allocs == frees` balance exact at shutdown (scale events move only
//! the alloc routes; frees travel by address).
//!
//! The simulated half sizes each stage with
//! [`ngm_simalloc::NgmElasticModel`] — the width the controller should
//! converge to — so the table separates "the controller converged to
//! the wrong width" from "the width itself is wrong". The throughput
//! check reruns the 16-client stage against a *fixed* 4-shard tier: the
//! elastic tier, free to grow past four rooms, should beat it.

use std::sync::Arc;

use ngm_sim::Machine;
use ngm_simalloc::{run_warm, NgmElasticModel};
use ngm_workloads::churn::{self, ChurnParams};

use crate::Scale;

/// Client counts per ramp stage: up, peak, and back down.
pub const STAGES: [usize; 5] = [1, 4, 16, 4, 1];
/// The elastic tier's resident floor.
pub const ELASTIC_MIN: usize = 1;
/// The elastic tier's ceiling.
pub const ELASTIC_MAX: usize = 8;
/// Width of the fixed tier the 16-client throughput check runs against.
pub const FIXED_SHARDS: usize = 4;

/// One ramp stage as observed on the live runtime.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Churning client threads this stage.
    pub clients: usize,
    /// Width [`NgmElasticModel`] predicts the controller converges to.
    pub predicted_shards: usize,
    /// Simulated allocations per million wall cycles at that width.
    pub sim_allocs_per_mcycle: f64,
    /// Serving shards when the stage's churn ended (the live width the
    /// controller actually reached under this load).
    pub live_serving: usize,
    /// Highest serving count observed during the stage.
    pub peak_serving: usize,
    /// Live allocations per second across the stage's clients.
    pub allocs_per_sec: f64,
}

/// The full ramp report.
#[derive(Debug, Clone)]
pub struct ElasticReport {
    /// One row per ramp stage, in ramp order.
    pub stages: Vec<StageRow>,
    /// Serving shards after the post-ramp idle settle (the controller
    /// should have drained back to the resident floor).
    pub settled_serving: usize,
    /// Scale-up / scale-down event totals over the whole ramp.
    pub scale_events: (u64, u64),
    /// Whether every shard balanced `allocs == frees` at shutdown.
    pub balanced: bool,
    /// 16-client throughput on the warm elastic tier (measured burst).
    pub elastic_peak_allocs_per_sec: f64,
    /// 16-client throughput on the fixed 4-shard tier, same churn.
    pub fixed_allocs_per_sec: f64,
}

/// How often the driver scrapes [`ngm_core::Ngm::heat_report`] while
/// the churn runs — the controller's evaluation cadence.
const SCRAPE_EVERY: std::time::Duration = std::time::Duration::from_millis(2);

/// The sim churn shape for one stage (mirrors the live worker loop).
fn sim_workload(clients: usize, scale: Scale) -> Vec<ngm_workloads::Event> {
    churn::collect(&ChurnParams {
        threads: clients as u8,
        total_allocs: 2_000 * scale.0.max(1) * clients as u32,
        live_cap: 128,
        size_range: (16, 2048),
        free_percent: 45,
        touch_percent: 5,
        compute_per_step: 4,
        seed: 0xe1a5,
    })
}

/// Churns `per_thread` alloc/free pairs on `clients` threads against
/// `ngm`, scraping the controller every [`SCRAPE_EVERY`] while any
/// worker runs. Returns (seconds, peak serving count during the stage).
fn churn_stage(ngm: &Arc<ngm_core::Ngm>, clients: usize, per_thread: usize) -> (f64, usize) {
    use std::alloc::Layout;
    let start = std::time::Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|t| {
            let ngm = Arc::clone(ngm);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut live: Vec<(std::ptr::NonNull<u8>, Layout)> = Vec::new();
                for i in 0..per_thread {
                    // Sizes sweep eight consecutive classes so the
                    // class → shard map spreads over the whole tier.
                    let size = 16 * (1 + (i + t) % 8);
                    let l = Layout::from_size_align(size, 8).expect("valid");
                    live.push((h.alloc(l).expect("alloc"), l));
                    if live.len() > 64 {
                        let (p, l) = live.swap_remove((i * 31) % live.len());
                        // SAFETY: live block from this allocator.
                        unsafe { h.dealloc(p, l) };
                    }
                }
                for (p, l) in live {
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, l) };
                }
            })
        })
        .collect();
    let mut peak = ngm.serving_shards().len();
    while !joins.iter().all(std::thread::JoinHandle::is_finished) {
        let _ = ngm.heat_report();
        peak = peak.max(ngm.serving_shards().len());
        std::thread::sleep(SCRAPE_EVERY);
    }
    for j in joins {
        j.join().expect("worker");
    }
    (start.elapsed().as_secs_f64(), peak)
}

/// Pumps the controller with no client traffic until the serving count
/// stops changing (bounded), letting drains run to completion.
fn settle(ngm: &Arc<ngm_core::Ngm>) -> usize {
    let mut serving = ngm.serving_shards().len();
    let mut stable = 0u32;
    for _ in 0..400 {
        let _ = ngm.heat_report();
        std::thread::sleep(SCRAPE_EVERY);
        let now = ngm.serving_shards().len();
        if now == serving {
            stable += 1;
            // Several quiet evaluations past any sustain/drain window.
            if stable > 24 {
                break;
            }
        } else {
            serving = now;
            stable = 0;
        }
    }
    serving
}

/// Runs the ramp on the live elastic tier plus the simulated
/// predicted-width column, with `profile` arming PMU sessions.
pub fn run_with(scale: Scale, profile: bool) -> ElasticReport {
    let per_thread = 10_000usize * scale.0.max(1) as usize;

    // Fixed-width reference first: 16 clients on exactly four rooms.
    let fixed = Arc::new(
        ngm_core::NgmConfig::new()
            .with_shards(FIXED_SHARDS)
            .with_batch(16, 8)
            .with_placement(ngm_core::CorePlacement::Unpinned)
            .build()
            .expect("valid config"),
    );
    let (fixed_secs, _) = churn_stage(&fixed, 16, per_thread);
    let fixed_allocs_per_sec = (16 * per_thread) as f64 / fixed_secs;
    assert!(
        Arc::into_inner(fixed)
            .expect("all clones dropped")
            .shutdown()
            .balanced(),
        "fixed reference tier unbalanced"
    );

    // The elastic tier under the ramp.
    let ngm = Arc::new(
        ngm_core::NgmConfig::new()
            .with_shards(ELASTIC_MIN)
            .elastic(ELASTIC_MIN, ELASTIC_MAX)
            .with_topology(ngm_core::ShardTopology::per_shard())
            .with_batch(16, 8)
            .with_placement(ngm_core::CorePlacement::Unpinned)
            .with_profile(profile)
            .build()
            .expect("valid config"),
    );
    let mut stages = Vec::new();
    for &clients in &STAGES {
        let (secs, peak) = churn_stage(&ngm, clients, per_thread);
        let events = sim_workload(clients, scale);
        let allocs = events
            .iter()
            .filter(|e| matches!(e, ngm_workloads::Event::Malloc { .. }))
            .count() as f64;
        let predicted = NgmElasticModel::predicted_shards(clients, ELASTIC_MIN, ELASTIC_MAX);
        let mut svc = ngm_sim::CoreConfig::big();
        svc.l2 = ngm_sim::CacheConfig::kib(1024, 16);
        let mut machine = Machine::new(ngm_sim::MachineConfig::asymmetric_many(
            clients, predicted, svc,
        ));
        let mut model = NgmElasticModel::new(clients, ELASTIC_MIN, ELASTIC_MAX);
        let r = run_warm(&mut machine, &mut model, events.into_iter(), 0);
        stages.push(StageRow {
            clients,
            predicted_shards: predicted,
            sim_allocs_per_mcycle: allocs / (r.wall_cycles as f64 / 1e6),
            live_serving: ngm.serving_shards().len(),
            peak_serving: peak,
            allocs_per_sec: (clients * per_thread) as f64 / secs,
        });
    }

    // A warm 16-client burst: the tier is already wide from the ramp's
    // peak stage, so this measures steady-state elastic throughput
    // rather than the widening transient.
    let (burst_secs, _) = churn_stage(&ngm, 16, per_thread);
    let elastic_peak_allocs_per_sec = (16 * per_thread) as f64 / burst_secs;

    let settled_serving = settle(&ngm);
    let scale_events = ngm.scale_counts();
    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let down = ngm.shutdown();
    ElasticReport {
        stages,
        settled_serving,
        scale_events,
        balanced: down.clean() && down.balanced(),
        elastic_peak_allocs_per_sec,
        fixed_allocs_per_sec,
    }
}

/// Runs the ramp without PMU profiling (the `repro elastic` default).
pub fn run(scale: Scale) -> ElasticReport {
    run_with(scale, false)
}

impl ElasticReport {
    /// Whether the live serving count rose to the ramp's peak stage and
    /// fell back afterwards (the experiment's headline claim).
    pub fn followed_load(&self) -> bool {
        let peak = self
            .stages
            .iter()
            .map(|s| s.peak_serving)
            .max()
            .unwrap_or(0);
        peak > ELASTIC_MIN && self.settled_serving == ELASTIC_MIN
    }

    /// Renders the ramp table and the verdict lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Elastic tier — shard count vs client ramp (min {ELASTIC_MIN}, max {ELASTIC_MAX})\n"
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>16} {:>8} {:>8} {:>14}",
            "clients", "predicted", "sim allocs/Mcyc", "serving", "peak", "allocs/sec"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>16.1} {:>8} {:>8} {:>14.0}",
                s.clients,
                s.predicted_shards,
                s.sim_allocs_per_mcycle,
                s.live_serving,
                s.peak_serving,
                s.allocs_per_sec
            );
        }
        let _ = writeln!(
            out,
            "\nsettled serving after idle: {} (floor {ELASTIC_MIN})",
            self.settled_serving
        );
        let _ = writeln!(
            out,
            "scale events: {} up, {} down; balanced at shutdown: {}",
            self.scale_events.0, self.scale_events.1, self.balanced
        );
        let _ = writeln!(out, "shard count followed load: {}", self.followed_load());
        let _ = writeln!(
            out,
            "16-client throughput: elastic (warm) {:.0}/s vs fixed-{FIXED_SHARDS} {:.0}/s — elastic faster: {}",
            self.elastic_peak_allocs_per_sec,
            self.fixed_allocs_per_sec,
            self.elastic_peak_allocs_per_sec > self.fixed_allocs_per_sec
        );
        let cores = ngm_offload::available_cores();
        if cores < ELASTIC_MAX + 16 {
            let _ = writeln!(
                out,
                "(note: {cores} core(s) available — a tier wider than the machine \
                 timeslices instead of parallelizing, so the throughput comparison \
                 reflects scheduler pressure, not tier width)"
            );
        }
        out
    }
}

/// The `--hw` variant: reruns the ramp with PMU profiling armed and
/// appends the per-shard hardware-counter report.
pub fn run_hw(scale: Scale) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "## Elastic tier — hardware counters\n");
    let per_thread = 5_000usize * scale.0.max(1) as usize;
    let ngm = Arc::new(
        ngm_core::NgmConfig::new()
            .with_shards(ELASTIC_MIN)
            .elastic(ELASTIC_MIN, ELASTIC_MAX)
            .with_batch(16, 8)
            .with_placement(ngm_core::CorePlacement::Unpinned)
            .with_profile(true)
            .build()
            .expect("valid config"),
    );
    let (_, peak) = churn_stage(&ngm, 16, per_thread);
    let report = ngm.pmu_report();
    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let down = ngm.shutdown();
    let _ = writeln!(
        out,
        "### 16 clients, peak {peak} shard(s) — balanced: {}",
        down.clean() && down.balanced()
    );
    match report {
        Some(r) => {
            let _ = writeln!(out, "{}", r.render());
        }
        None => {
            let _ = writeln!(out, "(no PMU readings deposited — perf events unavailable)");
        }
    }
    out
}
