//! Fault-injection sweep: is the request path hang-proof?
//!
//! The service tier's liveness claim (deadlines + reroute + inline
//! fallback, see `DESIGN.md` "Liveness & degradation") is only credible
//! under injected faults. This experiment sweeps fault rate × shard
//! count on the live [`ngm_core::Ngm`] tier with the deterministic
//! fault hooks armed (`--features faultinject`): every Nth response on
//! every shard is dropped on the floor, so clients must detect the loss
//! by deadline, retract the request, and reroute — or, when every shard
//! misbehaves at once, degrade to the bounded inline fallback.
//!
//! Reported per cell:
//!
//! * **recovered** — deadline expiries that the tier absorbed by
//!   rerouting (the allocation still succeeded on another shard);
//! * **degraded** — allocations served inline by the fallback heap
//!   because every shard was exhausted;
//! * **failed** — allocations the client actually saw fail. The
//!   acceptance bar is zero: a fault rate is *handled* only if no
//!   malloc call errors and none hangs;
//! * **p99** — client-observed allocation latency, which bounds the
//!   worst-case stall a faulty tier can impose on the application.
//!
//! The whole sweep asserts the shutdown books balance (`allocs ==
//! frees` including fallback traffic): fault handling must never leak.

#[cfg(feature = "faultinject")]
pub use imp::{run, FaultCell, FaultReport, DROP_RATES, SHARD_COUNTS};

/// Without the `faultinject` feature the sweep cannot arm any fault
/// hooks; print how to enable it instead of silently measuring nothing.
#[cfg(not(feature = "faultinject"))]
pub fn run(_scale: crate::Scale) -> String {
    "## Fault-injection sweep\n\n\
     (skipped: rebuild with `--features faultinject` to arm the \
     deterministic fault hooks, e.g.\n\
     `cargo run --release --features faultinject --bin repro -- faults`)\n"
        .to_string()
}

#[cfg(feature = "faultinject")]
mod imp {
    use std::alloc::Layout;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use crate::Scale;

    /// Shard counts crossed by the sweep.
    pub const SHARD_COUNTS: [usize; 2] = [2, 4];
    /// Drop-every-Nth-response fault rates (0 = fault-free baseline).
    pub const DROP_RATES: [u64; 4] = [0, 1000, 100, 10];
    /// Client threads hammering the tier in every cell.
    const CLIENTS: usize = 4;
    /// Per-request deadline: small enough that a dropped response costs
    /// milliseconds, large enough that a healthy shard never expires it.
    const DEADLINE: Duration = Duration::from_millis(5);

    /// One sweep cell: a (shards, drop rate) pair under client load.
    #[derive(Debug, Clone)]
    pub struct FaultCell {
        /// Service shards in the tier.
        pub shards: usize,
        /// Every Nth response dropped on every shard (0 = none).
        pub drop_every: u64,
        /// Total allocations the clients completed.
        pub allocs: u64,
        /// Deadline expiries absorbed by rerouting.
        pub recovered: u64,
        /// Allocations served inline by the fallback heap.
        pub degraded: u64,
        /// Allocations the clients saw fail (must be zero).
        pub failed: u64,
        /// Bounded retries paid against full rings.
        pub retries: u64,
        /// Client-observed p99 allocation latency, microseconds.
        pub p99_us: f64,
        /// Whether shutdown accounting balanced, fallback included.
        pub balanced: bool,
    }

    /// The full sweep.
    #[derive(Debug, Clone)]
    pub struct FaultReport {
        /// One row per (shards, drop rate) pair, row-major by shards.
        pub cells: Vec<FaultCell>,
    }

    /// Runs one cell: `CLIENTS` threads churn small allocations against
    /// a `shards`-wide tier whose every shard drops every Nth response.
    fn run_cell(shards: usize, drop_every: u64, scale: Scale) -> FaultCell {
        let ngm = Arc::new(
            ngm_core::NgmConfig::new()
                .with_shards(shards)
                .with_placement(ngm_core::CorePlacement::Unpinned)
                .with_deadline(Some(DEADLINE))
                .build()
                .expect("valid config"),
        );
        for s in 0..shards {
            ngm.fault_state(s).set_drop_every(drop_every);
        }
        let per_thread = 1_000usize * scale.0.max(1) as usize;
        let failed = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for t in 0..CLIENTS {
            let ngm = Arc::clone(&ngm);
            let failed = Arc::clone(&failed);
            joins.push(std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut lat = Vec::with_capacity(per_thread);
                let mut live: Vec<(std::ptr::NonNull<u8>, Layout)> = Vec::new();
                for i in 0..per_thread {
                    let size = 16 * (1 + (i + t) % 8);
                    let l = Layout::from_size_align(size, 8).expect("valid");
                    let t0 = Instant::now();
                    match h.alloc(l) {
                        Ok(p) => {
                            lat.push(t0.elapsed().as_nanos() as u64);
                            live.push((p, l));
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if live.len() > 32 {
                        let (p, l) = live.swap_remove((i * 31) % live.len());
                        // SAFETY: live block from this allocator.
                        unsafe { h.dealloc(p, l) };
                    }
                }
                for (p, l) in live {
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, l) };
                }
                lat
            }));
        }
        let mut lat: Vec<u64> = Vec::new();
        for j in joins {
            lat.extend(j.join().expect("client thread"));
        }
        // Disarm before shutdown so the stop handshake itself cannot be
        // dropped — the sweep measures the request path, not shutdown.
        for s in 0..shards {
            ngm.fault_state(s).set_drop_every(0);
        }
        let ngm = Arc::into_inner(ngm).expect("all clones dropped");
        let down = ngm.shutdown();
        lat.sort_unstable();
        let p99 = if lat.is_empty() {
            0.0
        } else {
            lat[(lat.len() - 1).min(lat.len() * 99 / 100)] as f64 / 1e3
        };
        FaultCell {
            shards,
            drop_every,
            allocs: lat.len() as u64,
            recovered: down.runtime.deadlines,
            degraded: down.service.fallback_allocs,
            failed: failed.load(Ordering::Relaxed),
            retries: down.runtime.retry_total,
            p99_us: p99,
            balanced: down.clean()
                && down.service.allocs == down.service.frees
                && down.heap.live_blocks == 0,
        }
    }

    /// Runs the full sweep.
    pub fn run(scale: Scale) -> String {
        let mut cells = Vec::new();
        for &shards in &SHARD_COUNTS {
            for &drop_every in &DROP_RATES {
                cells.push(run_cell(shards, drop_every, scale));
            }
        }
        FaultReport { cells }.render()
    }

    impl FaultReport {
        /// Renders the sweep table plus the acceptance verdict.
        pub fn render(&self) -> String {
            use std::fmt::Write as _;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "## Fault-injection sweep — drop every Nth response, all shards\n"
            );
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>8} {:>10} {:>9} {:>7} {:>8} {:>10}  balanced",
                "shards",
                "drop 1/N",
                "allocs",
                "recovered",
                "degraded",
                "failed",
                "retries",
                "p99 us"
            );
            let mut ok = true;
            for c in &self.cells {
                ok &= c.failed == 0 && c.balanced;
                let rate = if c.drop_every == 0 {
                    "none".to_string()
                } else {
                    format!("1/{}", c.drop_every)
                };
                let _ = writeln!(
                    out,
                    "{:<8} {:>10} {:>8} {:>10} {:>9} {:>7} {:>8} {:>10.1}  {}",
                    c.shards,
                    rate,
                    c.allocs,
                    c.recovered,
                    c.degraded,
                    c.failed,
                    c.retries,
                    c.p99_us,
                    c.balanced
                );
            }
            let _ = writeln!(
                out,
                "\nverdict: {}",
                if ok {
                    "PASS — zero failed allocations, books balanced at every fault rate"
                } else {
                    "FAIL — a cell failed allocations or leaked"
                }
            );
            out
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn faultfree_cell_is_clean() {
            let c = run_cell(2, 0, Scale(1));
            assert_eq!(c.failed, 0);
            assert_eq!(c.degraded, 0, "no faults, no degradation");
            assert!(c.balanced, "{c:?}");
        }

        #[test]
        fn heavy_drop_cell_recovers_without_failures() {
            let c = run_cell(2, 10, Scale(1));
            assert_eq!(c.failed, 0, "hang-proof path never errors: {c:?}");
            assert!(c.recovered > 0, "drops were detected by deadline: {c:?}");
            assert!(c.balanced, "{c:?}");
        }
    }
}
