//! Figure 1: execution-time sensitivity of `xalancbmk` to the allocator.
//!
//! Paper: "with an enhanced memory allocator, the overall system
//! performance can be improved by as much as 1.72×" (PTMalloc2 vs.
//! Mimalloc), "though only 2 % of time is spent on malloc and free".

use crate::report::{ratio, sci, Table};
use crate::Scale;

/// One bar of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Allocator name.
    pub name: &'static str,
    /// Wall-clock cycles of the run.
    pub cycles: u64,
    /// Execution time normalized to the fastest allocator.
    pub normalized: f64,
}

/// The figure's data plus the malloc-time share.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One row per allocator, paper order.
    pub rows: Vec<Fig1Row>,
    /// PTMalloc2-to-best slowdown (the paper's 1.72×).
    pub worst_over_best: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig1 {
    from_results(super::run_xalanc_baselines(scale))
}

/// Builds the figure from pre-computed runs (tests use reduced params).
pub fn from_results(results: Vec<ngm_simalloc::RunResult>) -> Fig1 {
    let best = results
        .iter()
        .map(|r| r.wall_cycles)
        .min()
        .expect("non-empty results") as f64;

    let rows: Vec<Fig1Row> = results
        .iter()
        .map(|r| Fig1Row {
            name: r.name,
            cycles: r.wall_cycles,
            normalized: r.wall_cycles as f64 / best,
        })
        .collect();
    let worst = rows.iter().map(|r| r.normalized).fold(0.0f64, f64::max);
    Fig1 {
        rows,
        worst_over_best: worst,
    }
}

impl Fig1 {
    /// Renders the figure as a table plus the headline ratio.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["Allocator", "cycles", "normalized time"]);
        for r in &self.rows {
            t.row(vec![
                r.name.to_string(),
                sci(r.cycles as f64),
                ratio(r.normalized),
            ]);
        }
        format!(
            "Figure 1: xalancbmk execution time by allocator\n{}\nspread (worst/best): {}  [paper: up to 1.72x]\n",
            t.render(),
            ratio(self.worst_over_best)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_xalanc_baselines_with;
    use ngm_workloads::xalanc::XalancParams;

    fn small_fig() -> Fig1 {
        from_results(run_xalanc_baselines_with(&XalancParams::small()))
    }

    #[test]
    fn ptmalloc2_is_slowest_and_spread_is_visible() {
        let f = small_fig();
        let pt = f
            .rows
            .iter()
            .find(|r| r.name == "PTMalloc2")
            .expect("PTMalloc2 present");
        for r in &f.rows {
            assert!(pt.normalized >= r.normalized, "{} beat PTMalloc2", r.name);
        }
        // The paper's headline direction: a clear spread from the
        // allocator alone (our simulator reproduces a muted magnitude;
        // see EXPERIMENTS.md).
        assert!(
            f.worst_over_best > 1.08,
            "spread {} too small to reproduce Figure 1's direction",
            f.worst_over_best
        );
        assert!(
            f.worst_over_best < 3.0,
            "spread {} implausibly large",
            f.worst_over_best
        );
    }

    #[test]
    fn modern_allocators_cluster_together() {
        let f = small_fig();
        let modern: Vec<f64> = f
            .rows
            .iter()
            .filter(|r| r.name != "PTMalloc2")
            .map(|r| r.normalized)
            .collect();
        let max = modern.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max < 1.15,
            "modern allocators should cluster tightly, got {max}"
        );
    }

    #[test]
    fn render_contains_all_allocators() {
        let f = small_fig();
        let s = f.render();
        for name in ["PTMalloc2", "JeMalloc", "TCMalloc", "Mimalloc"] {
            assert!(s.contains(name));
        }
    }
}
