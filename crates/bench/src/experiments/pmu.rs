//! PMU experiment: hardware attribution on the real runtime.
//!
//! Runs a mixed alloc/free workload on the actual offloaded allocator
//! with PMU profiling and the allocation-site profiler on, then renders:
//!
//! 1. the service-core-vs-app-cores counter report (§2.3's attribution
//!    question, measured instead of simulated),
//! 2. the allocation-site leak report (every site freed everything ⇒
//!    leak-free), and
//! 3. a sim-vs-measured MPKI comparison for one replay kernel, the same
//!    bridge `table1 --hw` uses.
//!
//! Works everywhere: where `perf_event_open` is unavailable the readings
//! degrade to the labeled software backend.

use std::alloc::Layout;
use std::sync::Arc;

use ngm_core::NgmConfig;
use ngm_simalloc::{run_kind_warm, ModelKind};
use ngm_workloads::xalanc;

use crate::hw;
use crate::Scale;

/// How sparsely the site profiler samples in this experiment. Low enough
/// to attribute every site in a short run; a production embedding would
/// raise it.
const SITE_SAMPLE: u64 = 1;

/// Runs the experiment and renders all three sections.
pub fn run(scale: Scale, ops: u32) -> String {
    let perf = match ngm_pmu::hardware_available() {
        Ok(()) => "hardware perf counters available".to_string(),
        Err(e) => format!("hardware perf unavailable ({e}); software fallback in use"),
    };

    // --- 1. Real-runtime attribution ---------------------------------
    let ngm = NgmConfig::new()
        .with_profile(true)
        .with_site_sample(SITE_SAMPLE)
        .with_batch(16, 8)
        .build()
        .expect("valid config");
    let ops = ops.max(1);
    let mut joins = Vec::new();
    for t in 0..2u32 {
        let mut h = ngm.handle();
        joins.push(std::thread::spawn(move || {
            let mut live = Vec::new();
            for i in 0..ops {
                let size = 16 + ((i as usize * 37 + t as usize * 101) % 1024);
                let l = Layout::from_size_align(size, 8).expect("valid");
                live.push((h.alloc(l).expect("alloc"), l));
                if live.len() > 32 {
                    let (p, l) = live.remove(0);
                    // SAFETY: block from this handle's allocator.
                    unsafe { h.dealloc(p, l) };
                }
            }
            for (p, l) in live {
                // SAFETY: block from this handle's allocator.
                unsafe { h.dealloc(p, l) };
            }
        }));
    }
    for j in joins {
        j.join().expect("worker");
    }
    let site_report = ngm.site_report().expect("site profiling on");
    let telemetry = Arc::clone(ngm.telemetry());
    ngm.shutdown();
    let pmu_report = telemetry
        .pmu_report()
        .expect("profiling on: service and client readings deposited");

    // --- 3. Sim-vs-measured bridge on one replay kernel --------------
    let (events, warmup) =
        xalanc::collect_with_warmup(&ngm_workloads::xalanc::XalancParams::small());
    let (r, measured) = hw::measure_replay(
        || run_kind_warm(ModelKind::Ngm, 1, events.iter().copied(), warmup),
        |r| r.total,
    );
    let sim = hw::sim_reading(&r.total);
    let deltas = hw::mpki_deltas(r.name, &sim, &measured);

    format!(
        "PMU: hardware measurement (scale {}x, {})\n\
         ==========================================\n\n\
         --- Service core vs app cores (real runtime, {} ops/thread) ---\n{}\n\
         --- Allocation sites (1-in-{} sampling) ---\n{}\n\
         --- Simulator vs host PMU (NGM model replay) ---\n{}",
        scale.0,
        perf,
        ops,
        pmu_report.render(),
        site_report.sample_interval,
        site_report.render(),
        hw::render_deltas(&deltas),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_renders_all_sections_without_perf_assumptions() {
        let s = run(Scale(1), 300);
        assert!(s.contains("service/"), "service column labeled:\n{s}");
        assert!(s.contains("clients(2)/"), "client column labeled:\n{s}");
        assert!(
            s.contains("no surviving allocations"),
            "balanced workload must be leak-free:\n{s}"
        );
        assert!(s.contains("sim-vs-measured MPKI deltas"), "{s}");
        assert!(
            s.contains("hardware perf"),
            "availability note present:\n{s}"
        );
    }
}
