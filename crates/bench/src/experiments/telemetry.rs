//! Telemetry exporter demo: runs a short mixed workload on the real
//! runtime with event tracing enabled, then renders everything the
//! telemetry layer can produce — the Prometheus text exposition, the
//! JSON snapshot, and the drained event trace converted back into a
//! replayable workload stream.

use std::alloc::Layout;

use ngm_core::NgmConfig;

use crate::trace::convert;

/// Runs the demo workload and renders all three export formats.
pub fn run(ops: u32) -> String {
    let ngm = NgmConfig::new()
        .with_trace_capacity(8192)
        .build()
        .expect("valid config");

    let mut joins = Vec::new();
    for t in 0..2u32 {
        let mut h = ngm.handle();
        let ops = ops.max(1);
        joins.push(std::thread::spawn(move || {
            let mut live = Vec::new();
            for i in 0..ops {
                let size = 16 + ((i as usize * 37 + t as usize * 101) % 1024);
                let l = Layout::from_size_align(size, 8).expect("valid");
                live.push((h.alloc(l).expect("alloc"), l));
                if live.len() > 32 {
                    let (p, l) = live.remove(0);
                    // SAFETY: block from this handle's allocator.
                    unsafe { h.dealloc(p, l) };
                }
            }
            for (p, l) in live {
                // SAFETY: block from this handle's allocator.
                unsafe { h.dealloc(p, l) };
            }
        }));
    }
    for j in joins {
        j.join().expect("worker");
    }

    // Let the service publish its heap stats (idle-round refresh).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while ngm.live_heap_stats().total_allocs == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }

    let metrics = ngm.metrics();
    let drain = ngm.telemetry().drain_trace();
    let conv = convert(&drain.events);

    format!(
        "Telemetry: metrics export and event trace (clock: {})\n\
         =====================================================\n\n\
         --- Prometheus text exposition ---\n{}\n\
         --- JSON snapshot ---\n{}\n\n\
         --- Event trace ---\n\
         captured {} events ({} dropped on ring overflow) -> {} replayable \
         workload events ({} unmatched frees, {} trailing frees)\n",
        ngm_telemetry::clock::source(),
        metrics.to_prometheus_text(),
        metrics.to_json(),
        drain.events.len(),
        drain.dropped_total,
        conv.events.len(),
        conv.unmatched_frees,
        conv.trailing_frees,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_renders_all_sections() {
        let s = run(200);
        assert!(s.contains("ngm_call_cycles"), "prometheus section: {s}");
        assert!(s.contains("\"histograms\""), "json section: {s}");
        assert!(s.contains("replayable"), "trace section: {s}");
    }
}
