//! Connection-server experiment: the completion-based front-end under
//! many-connection multiplexing.
//!
//! A simulated connection server is the workload the non-blocking API
//! was redesigned for: one client core multiplexes thousands of
//! connections, each event allocating a small buffer, touching it, and
//! freeing it. The blocking front-end stalls the *whole core* on every
//! magazine refill round trip; the completion front-end submits the
//! refill and keeps serving other connections, so the round trip
//! overlaps with useful work and only `WouldBlock` bookkeeping remains
//! on the critical path.
//!
//! Each client thread drives [`CONNECTIONS`] connection tasks through a
//! [`ngm_core::SubmissionQueue`] on the dependency-free
//! [`MiniExecutor`] — real futures, real slot wakers fired by the
//! service threads. The blocking baseline runs the identical event
//! stream through `alloc`/`dealloc` on the same tier shape. The
//! [`CompletionModel`] column predicts the speedup from cycle costs, so
//! a live ratio far below it flags a broken overlap (lost wakes, pump
//! starvation) rather than a slow machine.

use std::alloc::Layout;
use std::sync::Arc;

use ngm_core::{Ngm, NgmConfig, NgmError, SubmissionQueue};
use ngm_simalloc::CompletionModel;

use crate::executor::MiniExecutor;
use crate::Scale;

/// Simulated connections per client core (the experiment's headline
/// floor: the non-blocking front-end must sustain at least this many).
pub const CONNECTIONS: usize = 10_000;
/// Client threads (equal for both front-ends).
pub const CLIENTS: usize = 1;
/// Service shards backing the tier. One request slot is one in-flight
/// refill, so shards are completion-pipeline lanes: the non-blocking
/// front-end keeps all of them busy at once, while the blocking client
/// — serialized on each round trip — cannot.
pub const SHARDS: usize = 2;
/// Magazine batch / flush threshold, both front-ends.
pub const BATCH: usize = 2;

/// The sizes connections cycle through — eight consecutive small
/// classes, so refills for one class overlap with pops from others.
fn conn_layout(conn: usize) -> Layout {
    Layout::from_size_align(16 * (1 + conn % 8), 8).expect("valid layout")
}

/// The application side of one connection event: fill the reply buffer
/// and checksum it, as a request parser/serializer would. Identical for
/// both front-ends; this is the work the completion front-end overlaps
/// with refill round trips.
///
/// # Safety
///
/// `ptr` must be valid for writes and reads of `len` bytes.
unsafe fn event_work(ptr: std::ptr::NonNull<u8>, len: usize, seed: usize) {
    // SAFETY: caller provides a live block of `len` bytes.
    unsafe { std::ptr::write_bytes(ptr.as_ptr(), seed as u8, len) };
    let mut sum = seed as u64;
    for i in 0..len {
        // SAFETY: i < len.
        sum = sum
            .rotate_left(7)
            .wrapping_add(unsafe { ptr.as_ptr().add(i).read() } as u64);
    }
    std::hint::black_box(sum);
}

/// One connection: `events` rounds of alloc → touch → free through the
/// submission queue. The task only yields when it genuinely cannot
/// progress — its class's magazine is dry with the refill in flight
/// (the future parks on the slot waker), or the queue is at its
/// in-flight ceiling (parks on [`SubmissionQueue::ready`]). An event
/// whose class has stock runs straight through, exactly like the
/// blocking fast path.
async fn connection(sq: SubmissionQueue, conn: usize, events: usize) {
    let l = conn_layout(conn);
    for _ in 0..events {
        let ptr = loop {
            match sq.alloc(l) {
                Ok(fut) => match fut.await {
                    Ok(p) => break p,
                    Err(e) => panic!("allocation failed: {e}"),
                },
                Err(NgmError::WouldBlock) => sq.ready().await,
                Err(e) => panic!("submission failed: {e}"),
            }
        };
        // SAFETY: fresh block of at least `l.size()` bytes.
        unsafe { event_work(ptr, l.size(), conn) };
        loop {
            // SAFETY: the block above, relinquished on Ok.
            match unsafe { sq.free(ptr, l) } {
                Ok(()) => break,
                Err(NgmError::WouldBlock) => sq.ready().await,
                Err(e) => panic!("free failed: {e}"),
            }
        }
    }
}

/// A tier shaped for the experiment.
fn tier(profile: bool) -> Arc<Ngm> {
    Arc::new(
        NgmConfig::new()
            .with_shards(SHARDS)
            .with_batch(BATCH, BATCH / 2)
            .with_inflight_limit(1024)
            .with_placement(ngm_core::CorePlacement::Unpinned)
            .with_profile(profile)
            .build()
            .expect("valid config"),
    )
}

/// Drives `CLIENTS` threads × `CONNECTIONS` tasks through submission
/// queues; returns elapsed seconds.
fn run_nonblocking(ngm: &Arc<Ngm>, events: usize) -> f64 {
    let start = std::time::Instant::now();
    let joins: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let ngm = Arc::clone(ngm);
            std::thread::spawn(move || {
                let sq = SubmissionQueue::new(ngm.handle());
                let mut ex = MiniExecutor::new();
                for conn in 0..CONNECTIONS {
                    ex.spawn(connection(sq.clone(), conn, events));
                }
                ex.run();
                assert_eq!(sq.in_flight(), 0, "queue drained");
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client");
    }
    start.elapsed().as_secs_f64()
}

/// The blocking baseline: identical event stream, synchronous calls.
fn run_blocking(ngm: &Arc<Ngm>, events: usize) -> f64 {
    let start = std::time::Instant::now();
    let joins: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let ngm = Arc::clone(ngm);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                for conn in 0..CONNECTIONS {
                    let l = conn_layout(conn);
                    for _ in 0..events {
                        let p = h.alloc(l).expect("alloc");
                        // SAFETY: fresh block of at least `l.size()` bytes.
                        unsafe { event_work(p, l.size(), conn) };
                        // SAFETY: the block above.
                        unsafe { h.dealloc(p, l) };
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client");
    }
    start.elapsed().as_secs_f64()
}

/// The side-by-side report.
#[derive(Debug, Clone)]
pub struct ConnsReport {
    /// Connections each client core multiplexed.
    pub connections: usize,
    /// Alloc/free events per connection.
    pub events_per_conn: usize,
    /// Client threads per front-end.
    pub clients: usize,
    /// Non-blocking front-end events per second (all clients).
    pub nonblocking_events_per_sec: f64,
    /// Blocking front-end events per second (all clients).
    pub blocking_events_per_sec: f64,
    /// `ngm_wouldblock_total` after the non-blocking run — how often
    /// backpressure was surfaced as a typed `WouldBlock`.
    pub wouldblocks: u64,
    /// Peak `ngm_submit_depth` bucket observed (submission queue depth).
    pub submit_depth_samples: u64,
    /// Whether the non-blocking tier balanced `allocs == frees` on
    /// every shard at shutdown.
    pub nonblocking_balanced: bool,
    /// As above for the blocking baseline tier.
    pub blocking_balanced: bool,
    /// [`CompletionModel`] predicted non-blocking/blocking speedup.
    pub model_speedup: f64,
}

impl ConnsReport {
    /// Measured non-blocking / blocking throughput ratio.
    pub fn measured_speedup(&self) -> f64 {
        self.nonblocking_events_per_sec / self.blocking_events_per_sec
    }

    /// The experiment's acceptance line: the per-core connection floor
    /// held, the completion path kept up with blocking, and both
    /// ledgers were exact.
    pub fn accepted(&self) -> bool {
        self.connections >= 10_000
            && self.measured_speedup() >= 1.0
            && self.nonblocking_balanced
            && self.blocking_balanced
    }

    /// Renders the side-by-side table and verdict lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Connection server — blocking vs completion-based front-end\n"
        );
        let _ = writeln!(
            out,
            "{} connections/core x {} events, {} client thread(s), {} shard(s), batch {}",
            self.connections, self.events_per_conn, self.clients, SHARDS, BATCH
        );
        let _ = writeln!(
            out,
            "\n{:<22} {:>14} {:>10}",
            "front-end", "events/sec", "balanced"
        );
        let _ = writeln!(
            out,
            "{:<22} {:>14.0} {:>10}",
            "blocking", self.blocking_events_per_sec, self.blocking_balanced
        );
        let _ = writeln!(
            out,
            "{:<22} {:>14.0} {:>10}",
            "non-blocking", self.nonblocking_events_per_sec, self.nonblocking_balanced
        );
        let _ = writeln!(
            out,
            "\nspeedup: measured {:.2}x, model {:.2}x; wouldblocks {}, submit-depth samples {}",
            self.measured_speedup(),
            self.model_speedup,
            self.wouldblocks,
            self.submit_depth_samples
        );
        let _ = writeln!(
            out,
            "connections sustained per client core: {} (floor 10000: {})",
            self.connections,
            self.connections >= 10_000
        );
        let _ = writeln!(out, "conns accepted: {}", self.accepted());
        out
    }
}

/// Runs both front-ends and assembles the report.
pub fn run_with(scale: Scale, profile: bool) -> (ConnsReport, Option<ngm_pmu::PmuReport>) {
    let events = 4usize * scale.0.max(1) as usize;

    let blocking_tier = tier(false);
    let blocking_secs = run_blocking(&blocking_tier, events);
    let blocking_down = Arc::into_inner(blocking_tier)
        .expect("all clones dropped")
        .shutdown();

    let nb_tier = tier(profile);
    let nb_secs = run_nonblocking(&nb_tier, events);
    let metrics = nb_tier.metrics();
    let wouldblocks = metrics.get_counter("ngm_wouldblock_total").unwrap_or(0);
    let submit_depth_samples = metrics
        .get_histogram("ngm_submit_depth")
        .map_or(0, |h| h.count());
    let pmu = nb_tier.pmu_report();
    let nb_down = Arc::into_inner(nb_tier)
        .expect("all clones dropped")
        .shutdown();

    let total_events = (CLIENTS * CONNECTIONS * events) as f64;
    let model = CompletionModel {
        batch_size: BATCH as u64,
        inflight_limit: 1024,
        ..CompletionModel::default()
    };
    (
        ConnsReport {
            connections: CONNECTIONS,
            events_per_conn: events,
            clients: CLIENTS,
            nonblocking_events_per_sec: total_events / nb_secs,
            blocking_events_per_sec: total_events / blocking_secs,
            wouldblocks,
            submit_depth_samples,
            nonblocking_balanced: nb_down.clean() && nb_down.balanced(),
            blocking_balanced: blocking_down.clean() && blocking_down.balanced(),
            model_speedup: model.predicted_speedup(),
        },
        pmu,
    )
}

/// The `repro conns` entry point (no PMU).
pub fn run(scale: Scale) -> ConnsReport {
    run_with(scale, false).0
}

/// The `--hw` variant: reruns the non-blocking side with PMU profiling
/// armed and appends the hardware-counter report.
pub fn run_hw(scale: Scale) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "## Connection server — hardware counters\n");
    let (report, pmu) = run_with(scale, true);
    let _ = writeln!(
        out,
        "non-blocking {:.0} events/s, balanced: {}",
        report.nonblocking_events_per_sec, report.nonblocking_balanced
    );
    match pmu {
        Some(r) => {
            let _ = writeln!(out, "{}", r.render());
        }
        None => {
            let _ = writeln!(out, "(no PMU readings deposited — perf events unavailable)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end pass (few connections, one event) so the
    /// plumbing — executor, queue, futures, both ledgers — is covered in
    /// the test tier.
    #[test]
    fn mini_conns_pass_balances_both_frontends() {
        let events = 1;
        let nb = tier(false);
        let ngm = Arc::clone(&nb);
        let j = std::thread::spawn(move || {
            let sq = SubmissionQueue::new(ngm.handle());
            let mut ex = MiniExecutor::new();
            for conn in 0..64 {
                ex.spawn(connection(sq.clone(), conn, events));
            }
            ex.run();
            assert_eq!(sq.in_flight(), 0);
        });
        j.join().expect("client");
        let down = Arc::into_inner(nb).expect("sole owner").shutdown();
        assert!(down.balanced(), "{down:?}");

        let blocking = tier(false);
        let secs = run_blocking(&blocking, events);
        assert!(secs >= 0.0);
        let down = Arc::into_inner(blocking).expect("sole owner").shutdown();
        assert!(down.balanced(), "{down:?}");
    }
}
