//! Figure 2: aggregated vs. segregated metadata layout.
//!
//! The paper presents the layouts as a diagram and argues the trade-off
//! in prose; this experiment *measures* it, holding placement fixed and
//! varying only where free-list links live (`ngm-simalloc`'s
//! [`ngm_simalloc::layout::LayoutModel`]), plus a real-heap side that
//! compares `ngm-heap`'s two implementations for metadata footprint.

use ngm_sim::{Machine, MachineConfig};
use ngm_simalloc::layout::LayoutModel;
use ngm_simalloc::run;
use ngm_workloads::churn::{self, ChurnParams};

use crate::report::{sci, Table};
use crate::Scale;

/// Measurements for one layout.
#[derive(Debug, Clone)]
pub struct LayoutRow {
    /// Layout name.
    pub name: &'static str,
    /// Wall cycles for the churn run.
    pub cycles: u64,
    /// L1d load misses (warm-line effect shows here).
    pub l1d_load_misses: u64,
    /// LLC misses attributed to user accesses.
    pub user_llc_misses: u64,
    /// LLC misses attributed to metadata accesses.
    pub meta_llc_misses: u64,
    /// Metadata bytes maintained by the model.
    pub meta_bytes: u64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Aggregated and segregated rows.
    pub rows: Vec<LayoutRow>,
}

fn churn_params(scale: Scale) -> ChurnParams {
    ChurnParams {
        total_allocs: Scale(scale.0).apply(30_000),
        live_cap: 2048,
        size_range: (16, 512),
        touch_percent: 100,
        compute_per_step: 40,
        ..ChurnParams::default()
    }
}

/// Runs the experiment.
pub fn run_fig2(scale: Scale) -> Fig2 {
    let params = churn_params(scale);
    let mut events = Vec::new();
    churn::generate(&params, &mut |e| events.push(e));

    let rows = [LayoutModel::aggregated(), LayoutModel::segregated()]
        .into_iter()
        .map(|mut model| {
            let mut machine = Machine::new(MachineConfig::a72(1));
            let r = run(&mut machine, &mut model, events.iter().copied());
            LayoutRow {
                name: r.name,
                cycles: r.wall_cycles,
                l1d_load_misses: r.total.l1d_load_misses,
                user_llc_misses: r.total.user_llc_misses,
                meta_llc_misses: r.total.meta_llc_misses,
                meta_bytes: r.meta_bytes,
            }
        })
        .collect();
    Fig2 { rows }
}

impl Fig2 {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "layout",
            "cycles",
            "L1d-load-misses",
            "user-LLC-misses",
            "meta-LLC-misses",
            "meta-bytes",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.to_string(),
                sci(r.cycles as f64),
                sci(r.l1d_load_misses as f64),
                sci(r.user_llc_misses as f64),
                sci(r.meta_llc_misses as f64),
                r.meta_bytes.to_string(),
            ]);
        }
        format!(
            "Figure 2 (measured): metadata layout trade-off under identical placement\n{}\n\
             aggregated: links ride in the blocks (warm lines, zero extra space);\n\
             segregated: links in a decoupled index array (more space, offloadable).\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segregated_costs_space_aggregated_costs_lines() {
        let f = run_fig2(Scale(1));
        let agg = &f.rows[0];
        let seg = &f.rows[1];
        assert_eq!(agg.name, "Aggregated");
        assert_eq!(seg.name, "Segregated");
        // The trade-off the paper draws: segregated maintains strictly
        // more metadata space...
        assert!(seg.meta_bytes > agg.meta_bytes);
        // ...while aggregated's allocator traffic rides user lines, so
        // its user-data misses cannot be higher than segregated's by
        // much; the warm-line effect shows as fewer L1 misses on one side
        // or the other depending on reuse distance — assert both ran to
        // comparable scale rather than a fragile direction.
        assert!(agg.cycles > 0 && seg.cycles > 0);
        let ratio = agg.cycles as f64 / seg.cycles as f64;
        assert!((0.5..2.0).contains(&ratio), "cycle ratio {ratio} diverged");
    }

    #[test]
    fn render_mentions_both_layouts() {
        let s = run_fig2(Scale(1)).render();
        assert!(s.contains("Aggregated") && s.contains("Segregated"));
    }
}
