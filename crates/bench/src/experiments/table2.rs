//! Table 2: `xmalloc` on TCMalloc with 1, 2, 4, 8 threads.
//!
//! Paper shape: LLC load misses grow more than 10× from 1 to 8 threads —
//! per-thread caches exchanging cross-thread-freed blocks through the
//! central lists drag block lines between cores.

use ngm_sim::PmuCounters;
use ngm_simalloc::{run_kind, ModelKind};
use ngm_workloads::xmalloc::{self, XmallocParams};

use crate::report::{sci, Table};
use crate::Scale;

/// Row extractor over simulated PMU counters.
type CounterFn = fn(&PmuCounters) -> f64;

/// One thread-count column of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Col {
    /// Number of threads.
    pub threads: u8,
    /// Machine-wide counters.
    pub counters: PmuCounters,
}

/// The table's data.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Columns for 1, 2, 4, 8 threads.
    pub cols: Vec<Table2Col>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table2 {
    let cols = [1u8, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let params = XmallocParams {
                allocs_per_thread: Scale(scale.0).apply(20_000) / u32::from(threads),
                ..XmallocParams::default().with_threads(threads)
            };
            let mut events = Vec::new();
            xmalloc::generate(&params, &mut |e| events.push(e));
            let r = run_kind(ModelKind::TcMalloc, threads as usize, events.into_iter());
            Table2Col {
                threads,
                counters: r.total,
            }
        })
        .collect();
    Table2 { cols }
}

impl Table2 {
    /// LLC-load-miss growth from 1 to 8 threads (paper: >10×).
    pub fn llc_load_growth(&self) -> f64 {
        let one = self.cols.first().expect("1-thread column").counters;
        let eight = self.cols.last().expect("8-thread column").counters;
        eight.llc_load_misses as f64 / one.llc_load_misses.max(1) as f64
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut header = vec!["metric".to_string()];
        header.extend(self.cols.iter().map(|c| c.threads.to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        let rows: [(&str, CounterFn); 4] = [
            ("cycles", |c| c.cycles as f64),
            ("instructions", |c| c.instructions as f64),
            ("LLC-load-misses", |c| c.llc_load_misses as f64),
            ("LLC-store-misses", |c| c.llc_store_misses as f64),
        ];
        for (label, get) in rows {
            let mut row = vec![label.to_string()];
            row.extend(self.cols.iter().map(|c| sci(get(&c.counters))));
            t.row(row);
        }
        format!(
            "Table 2: PMU data for xmalloc on TCMalloc vs thread count\n{}\nLLC-load-miss growth 1->8 threads: {:.1}x [paper >10x]\n",
            t.render(),
            self.llc_load_growth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_misses_grow_superlinearly_with_threads() {
        let t = run(Scale(1));
        let loads: Vec<u64> = t.cols.iter().map(|c| c.counters.llc_load_misses).collect();
        assert!(
            loads.windows(2).all(|w| w[1] > w[0]),
            "LLC load misses must grow with threads: {loads:?}"
        );
        assert!(
            t.llc_load_growth() > 4.0,
            "growth {} too small for Table 2's shape",
            t.llc_load_growth()
        );
    }

    #[test]
    fn cycles_grow_with_threads() {
        let t = run(Scale(1));
        let cycles: Vec<u64> = t.cols.iter().map(|c| c.counters.cycles).collect();
        assert!(cycles.windows(2).all(|w| w[1] > w[0]), "{cycles:?}");
    }

    #[test]
    fn render_has_thread_columns() {
        let s = run(Scale(1)).render();
        assert!(s.contains("LLC-load-misses"));
        assert!(s.contains("1->8"));
    }
}
