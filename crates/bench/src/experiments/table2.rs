//! Table 2: `xmalloc` on TCMalloc with 1, 2, 4, 8 threads.
//!
//! Paper shape: LLC load misses grow more than 10× from 1 to 8 threads —
//! per-thread caches exchanging cross-thread-freed blocks through the
//! central lists drag block lines between cores.

use ngm_pmu::PmuReport;
use ngm_sim::PmuCounters;
use ngm_simalloc::{run_kind, ModelKind};
use ngm_workloads::xmalloc::{self, XmallocParams};

use crate::hw::{self, MpkiDelta};
use crate::report::{sci, Table};
use crate::Scale;

/// Row extractor over simulated PMU counters.
type CounterFn = fn(&PmuCounters) -> f64;

/// One thread-count column of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Col {
    /// Number of threads.
    pub threads: u8,
    /// Machine-wide counters.
    pub counters: PmuCounters,
}

/// The table's data.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Columns for 1, 2, 4, 8 threads.
    pub cols: Vec<Table2Col>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table2 {
    let cols = [1u8, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let params = XmallocParams {
                allocs_per_thread: Scale(scale.0).apply(20_000) / u32::from(threads),
                ..XmallocParams::default().with_threads(threads)
            };
            let mut events = Vec::new();
            xmalloc::generate(&params, &mut |e| events.push(e));
            let r = run_kind(ModelKind::TcMalloc, threads as usize, events.into_iter());
            Table2Col {
                threads,
                counters: r.total,
            }
        })
        .collect();
    Table2 { cols }
}

impl Table2 {
    /// LLC-load-miss growth from 1 to 8 threads (paper: >10×).
    pub fn llc_load_growth(&self) -> f64 {
        let one = self.cols.first().expect("1-thread column").counters;
        let eight = self.cols.last().expect("8-thread column").counters;
        eight.llc_load_misses as f64 / one.llc_load_misses.max(1) as f64
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut header = vec!["metric".to_string()];
        header.extend(self.cols.iter().map(|c| c.threads.to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        let rows: [(&str, CounterFn); 4] = [
            ("cycles", |c| c.cycles as f64),
            ("instructions", |c| c.instructions as f64),
            ("LLC-load-misses", |c| c.llc_load_misses as f64),
            ("LLC-store-misses", |c| c.llc_store_misses as f64),
        ];
        for (label, get) in rows {
            let mut row = vec![label.to_string()];
            row.extend(self.cols.iter().map(|c| sci(get(&c.counters))));
            t.row(row);
        }
        format!(
            "Table 2: PMU data for xmalloc on TCMalloc vs thread count\n{}\nLLC-load-miss growth 1->8 threads: {:.1}x [paper >10x]\n",
            t.render(),
            self.llc_load_growth()
        )
    }
}

/// Table 2 measured twice per thread count: simulator and host PMU.
#[derive(Debug)]
pub struct Table2Hw {
    /// Side-by-side report: `<threads>t:sim/sw` next to `<threads>t:run`
    /// with its backend label.
    pub report: PmuReport,
    /// Per-thread-count, per-miss-event MPKI comparisons (the CI
    /// artifact).
    pub deltas: Vec<MpkiDelta>,
}

/// Runs Table 2 with hardware measurement: each thread count's TCMalloc
/// replay executes under a [`ngm_pmu::PmuSession`]. Degrades to the
/// sim-fed software backend (never panics) where perf is unavailable.
pub fn run_hw(scale: Scale) -> Table2Hw {
    let mut report = PmuReport::new(
        "Table 2 (hardware): xmalloc/TCMalloc replay, simulator vs host PMU per thread count",
    );
    let mut deltas = Vec::new();
    for threads in [1u8, 2, 4, 8] {
        let params = XmallocParams {
            allocs_per_thread: Scale(scale.0).apply(20_000) / u32::from(threads),
            ..XmallocParams::default().with_threads(threads)
        };
        let mut events = Vec::new();
        xmalloc::generate(&params, &mut |e| events.push(e));
        let (r, measured) = hw::measure_replay(
            || {
                run_kind(
                    ModelKind::TcMalloc,
                    threads as usize,
                    events.iter().copied(),
                )
            },
            |r| r.total,
        );
        let sim = hw::sim_reading(&r.total);
        let col = format!("{threads}t");
        deltas.extend(hw::mpki_deltas(&col, &sim, &measured));
        report.push(format!("{col}:sim"), sim);
        report.push(format!("{col}:run"), measured);
    }
    Table2Hw { report, deltas }
}

impl Table2Hw {
    /// Renders the side-by-side table plus the delta lines.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.report.render(),
            hw::render_deltas(&self.deltas)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_misses_grow_superlinearly_with_threads() {
        let t = run(Scale(1));
        let loads: Vec<u64> = t.cols.iter().map(|c| c.counters.llc_load_misses).collect();
        assert!(
            loads.windows(2).all(|w| w[1] > w[0]),
            "LLC load misses must grow with threads: {loads:?}"
        );
        assert!(
            t.llc_load_growth() > 4.0,
            "growth {} too small for Table 2's shape",
            t.llc_load_growth()
        );
    }

    #[test]
    fn cycles_grow_with_threads() {
        let t = run(Scale(1));
        let cycles: Vec<u64> = t.cols.iter().map(|c| c.counters.cycles).collect();
        assert!(cycles.windows(2).all(|w| w[1] > w[0]), "{cycles:?}");
    }

    #[test]
    fn render_has_thread_columns() {
        let s = run(Scale(1)).render();
        assert!(s.contains("LLC-load-misses"));
        assert!(s.contains("1->8"));
    }

    #[test]
    fn hw_table_has_sim_and_measured_columns_per_thread_count() {
        let t = run_hw(Scale(1));
        assert_eq!(t.report.cols.len(), 8, "sim + run column per thread count");
        let s = t.render();
        for threads in ["1t", "2t", "4t", "8t"] {
            assert!(s.contains(&format!("{threads}:sim/sw")), "{s}");
            assert!(
                s.contains(&format!("{threads}:run/hw"))
                    || s.contains(&format!("{threads}:run/sw")),
                "measured column must be backend-labeled:\n{s}"
            );
        }
        assert_eq!(t.deltas.len(), 16, "4 thread counts x 4 miss events");
    }
}
