//! One module per paper artifact.

pub mod ablations;
pub mod conns;
pub mod elastic;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod model41;
pub mod obs;
pub mod pmu;
pub mod shards;
pub mod spans;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod telemetry;

use ngm_simalloc::{run_kind_warm, ModelKind, RunResult};
use ngm_workloads::xalanc::{self, XalancParams};

use crate::Scale;

/// The xalanc configuration for a given scale. Scale 1 is the calibrated
/// default; tests use [`XalancParams::small`] through
/// [`run_xalanc_baselines_with`].
pub fn xalanc_params(scale: Scale) -> XalancParams {
    XalancParams::default().scaled(scale.0.max(1))
}

/// Runs the xalanc workload under every baseline allocator model —
/// the shared substrate of Figure 1 and Table 1. Counters exclude the
/// warmup window (the allocator's pre-fragmentation transient).
pub fn run_xalanc_baselines(scale: Scale) -> Vec<RunResult> {
    run_xalanc_baselines_with(&xalanc_params(scale))
}

/// As [`run_xalanc_baselines`] with explicit parameters.
pub fn run_xalanc_baselines_with(params: &XalancParams) -> Vec<RunResult> {
    let (events, warmup) = xalanc::collect_with_warmup(params);
    ModelKind::BASELINES
        .into_iter()
        .map(|kind| run_kind_warm(kind, 1, events.iter().copied(), warmup))
        .collect()
}

/// Runs xalanc under one model kind (used by Table 3 and ablations).
pub fn run_xalanc_kind(kind: ModelKind, scale: Scale) -> RunResult {
    let (events, warmup) = xalanc::collect_with_warmup(&xalanc_params(scale));
    run_kind_warm(kind, 1, events.into_iter(), warmup)
}

#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore]
    fn meta_miss_breakdown() {
        use ngm_simalloc::run_kind_warm;
        let (events, warmup) = xalanc::collect_with_warmup(&xalanc_params(Scale(1)));
        for kind in [ModelKind::Mimalloc, ModelKind::Ngm] {
            let r = run_kind_warm(kind, 1, events.iter().copied(), warmup);
            let app = r.app_total(1);
            println!(
                "{}: app meta-LLC {} user-LLC {} l1d-store-miss {} llc-store-miss {} atomics {} wall {}",
                r.name,
                app.meta_llc_misses,
                app.user_llc_misses,
                app.l1d_store_misses,
                app.llc_store_misses,
                r.model_atomics,
                r.wall_cycles,
            );
        }
    }

    #[test]
    #[ignore]
    fn small_params_shape() {
        for r in run_xalanc_baselines_with(&ngm_workloads::xalanc::XalancParams::small()) {
            println!(
                "{}: cycles {} dTLB-load-MPKI {:.3} LLC-load-MPKI {:.3}",
                r.name,
                r.wall_cycles,
                r.total.dtlb_load_mpki(),
                r.total.llc_load_mpki()
            );
        }
    }

    #[test]
    #[ignore]
    fn floor_without_queries() {
        let mut p = xalanc_params(Scale(1));
        p.queries_per_node = 0;
        for r in run_xalanc_baselines_with(&p) {
            println!(
                "{}: dTLB-load {} ({:.3} MPKI), LLC-load {} ({:.3}), cycles {}",
                r.name,
                r.total.dtlb_load_misses,
                r.total.dtlb_load_mpki(),
                r.total.llc_load_misses,
                r.total.llc_load_mpki(),
                r.wall_cycles
            );
        }
    }
}
