//! Ablations over the design choices DESIGN.md calls out.
//!
//! * **A — wait strategy**: the paper's prototype busy-spins both sides;
//!   how much does the policy matter on a real machine?
//! * **B — free batching**: the service drains asynchronous frees in
//!   batches; sweep the batch size.
//! * **C — core type** (§3.2 "Type of Core to Offload to"): big
//!   out-of-order vs. little in-order vs. near-memory service core.
//! * **D — atomic latency** (§3.1.1/§4.1): sweep the RMW cost from
//!   20 to 700 cycles and find where offloading stops paying.
//! * **E — handshake batching** (§3.1.1's MMT lesson): amortize the
//!   round trip over a batch of prefetched addresses and find the batch
//!   size at which offloading beats Mimalloc.

use std::time::Instant;

use ngm_core::{MallocService, NgmConfig};
use ngm_offload::WaitStrategy;
use ngm_sim::{CoreConfig, Machine, MachineConfig};
use ngm_simalloc::{run, ModelKind, NgmBatchModel, NgmModel};
use ngm_workloads::xalanc::{self, XalancParams};

use ngm_telemetry::hist::HistogramSnapshot;

use crate::report::{latency_table, Table};
use crate::Scale;

/// Result of one wait-strategy measurement.
#[derive(Debug, Clone)]
pub struct WaitRow {
    /// Strategy label.
    pub label: &'static str,
    /// Synchronous allocations per second achieved.
    pub allocs_per_sec: f64,
}

/// Ablation A: client wait strategy vs. allocation round-trip throughput
/// on the real runtime.
pub fn wait_strategies(ops: u32) -> Vec<WaitRow> {
    let strategies: [(&'static str, WaitStrategy); 3] = [
        ("spin", WaitStrategy::Spin),
        ("spin+yield", WaitStrategy::SpinYield { spins: 64 }),
        ("backoff", WaitStrategy::Backoff),
    ];
    strategies
        .into_iter()
        .map(|(label, wait)| {
            // The server must always yield on this box or a spinning
            // client never runs; server policy is left at its default.
            let ngm = NgmConfig::new()
                .with_client_wait(wait)
                .build()
                .expect("valid config");
            let mut h = ngm.handle();
            let layout = std::alloc::Layout::from_size_align(64, 8).expect("valid");
            let start = Instant::now();
            for _ in 0..ops {
                let p = h.alloc(layout).expect("alloc");
                // SAFETY: block just allocated, freed once.
                unsafe { h.dealloc(p, layout) };
            }
            let secs = start.elapsed().as_secs_f64();
            drop(h);
            drop(ngm);
            WaitRow {
                label,
                allocs_per_sec: f64::from(ops) / secs,
            }
        })
        .collect()
}

/// Result of one drain-batch measurement.
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Drain batch size.
    pub batch: usize,
    /// Asynchronous frees per second drained end-to-end.
    pub frees_per_sec: f64,
}

/// Ablation B: service drain-batch size vs. free throughput.
pub fn free_batching(ops: u32) -> Vec<BatchRow> {
    [1usize, 4, 16, 64, 256]
        .into_iter()
        .map(|batch| {
            let orphans = std::sync::Arc::new(ngm_core::orphan::OrphanStack::new());
            let service = MallocService::new(std::sync::Arc::clone(&orphans));
            let rt = ngm_offload::OffloadRuntime::try_start(
                service,
                ngm_offload::RuntimeConfig {
                    drain_batch: batch,
                    ..ngm_offload::RuntimeConfig::new()
                },
            )
            .expect("spawn service thread");
            let mut client = rt.register_client();
            let layout_free = |addr: usize| {
                ngm_core::FreePost::One(ngm_core::FreeMsg {
                    addr,
                    size: 64,
                    align: 8,
                })
            };
            let start = Instant::now();
            for _ in 0..ops {
                let addr = match client.call(ngm_core::MallocReq::One(ngm_core::AllocReq {
                    size: 64,
                    align: 8,
                })) {
                    ngm_core::MallocResp::One(addr) => addr,
                    resp => panic!("One request answered with {resp:?}"),
                };
                assert_ne!(addr, 0);
                client.post(layout_free(addr));
            }
            drop(client);
            let (svc, _stats) = rt.shutdown();
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(svc.service_stats().frees, u64::from(ops));
            BatchRow {
                batch,
                frees_per_sec: f64::from(ops) / secs,
            }
        })
        .collect()
}

/// Result of one core-type run.
#[derive(Debug, Clone)]
pub struct CoreRow {
    /// Service-core description.
    pub label: &'static str,
    /// Wall cycles of the xalanc run.
    pub wall_cycles: u64,
    /// Cycles spent by the service core itself.
    pub service_cycles: u64,
}

/// Ablation C: §3.2's core-type choice, simulated.
pub fn core_types(scale: Scale) -> Vec<CoreRow> {
    core_types_with(&XalancParams::default().scaled(scale.0.max(1)))
}

/// As [`core_types`] with explicit workload parameters.
pub fn core_types_with(params: &XalancParams) -> Vec<CoreRow> {
    let mut events = Vec::new();
    xalanc::generate(params, &mut |e| events.push(e));
    let cores: [(&'static str, CoreConfig); 3] = [
        ("big out-of-order", CoreConfig::big()),
        ("little in-order", CoreConfig::little()),
        ("near-memory", CoreConfig::near_memory()),
    ];
    cores
        .into_iter()
        .map(|(label, svc_core)| {
            let mut machine = Machine::new(MachineConfig::asymmetric(1, svc_core));
            let mut model = NgmModel::new(1);
            let r = run(&mut machine, &mut model, events.iter().copied());
            CoreRow {
                label,
                wall_cycles: r.wall_cycles,
                service_cycles: r.per_core.last().expect("service core").cycles,
            }
        })
        .collect()
}

/// Result of one atomic-latency run.
#[derive(Debug, Clone)]
pub struct AtomicRow {
    /// RMW latency in cycles.
    pub atomic_cycles: u64,
    /// NGM wall cycles at that latency.
    pub ngm_wall: u64,
    /// Mimalloc wall cycles at that latency (its remote-free atomics are
    /// rare on this single-threaded workload, so it barely moves).
    pub mimalloc_wall: u64,
}

/// Ablation D: atomic-RMW latency sweep (the §4.1 crossover, simulated).
pub fn atomic_latency(scale: Scale) -> Vec<AtomicRow> {
    atomic_latency_with(&XalancParams::default().scaled(scale.0.max(1)))
}

/// As [`atomic_latency`] with explicit workload parameters.
pub fn atomic_latency_with(params: &XalancParams) -> Vec<AtomicRow> {
    let mut events = Vec::new();
    xalanc::generate(params, &mut |e| events.push(e));
    [20u64, 67, 150, 300, 700]
        .into_iter()
        .map(|lat| {
            let mut ngm_cfg = ModelKind::Ngm.machine(1);
            ngm_cfg.cost.atomic_rmw = lat;
            let mut machine = Machine::new(ngm_cfg);
            let mut model = NgmModel::new(1);
            let ngm = run(&mut machine, &mut model, events.iter().copied());

            let mut mi_cfg = ModelKind::Mimalloc.machine(1);
            mi_cfg.cost.atomic_rmw = lat;
            let mut machine = Machine::new(mi_cfg);
            let mut model = ModelKind::Mimalloc.build(1);
            let mi = run(&mut machine, model.as_mut(), events.iter().copied());

            AtomicRow {
                atomic_cycles: lat,
                ngm_wall: ngm.wall_cycles,
                mimalloc_wall: mi.wall_cycles,
            }
        })
        .collect()
}

/// One measured communication-latency distribution.
#[derive(Debug, Clone)]
pub struct MeasuredCommRow {
    /// Operation label.
    pub op: &'static str,
    /// Round-trip (or post) latency distribution, in
    /// [`ngm_telemetry::clock`] units.
    pub snapshot: HistogramSnapshot,
}

/// Ablation D, measured half: runs a real alloc/free loop on the live
/// runtime and reports the *observed* T_comm distribution from the
/// always-on latency histograms — the quantity §4.1 models with
/// `ATOMICS_PER_CALL x ATOMIC_CYCLES`.
pub fn measured_comm(ops: u32) -> Vec<MeasuredCommRow> {
    let ngm = NgmConfig::new().build().expect("valid config");
    let mut h = ngm.handle();
    let layout = std::alloc::Layout::from_size_align(64, 8).expect("valid");
    for _ in 0..ops.max(1) {
        let p = h.alloc(layout).expect("alloc");
        // SAFETY: block just allocated, freed once.
        unsafe { h.dealloc(p, layout) };
    }
    let calls = ngm.telemetry().call_cycles.snapshot();
    let posts = ngm.telemetry().post_cycles.snapshot();
    drop(h);
    drop(ngm);
    vec![
        MeasuredCommRow {
            op: "malloc call (sync round trip)",
            snapshot: calls,
        },
        MeasuredCommRow {
            op: "free post (async enqueue)",
            snapshot: posts,
        },
    ]
}

/// Result of one batching run.
#[derive(Debug, Clone)]
pub struct BatchSimRow {
    /// Refill batch size.
    pub batch: usize,
    /// NGM-batch wall cycles.
    pub ngm_wall: u64,
    /// Speedup over Mimalloc (>1 means the offloaded allocator wins).
    pub speedup_vs_mimalloc: f64,
}

/// Ablation E: refill batch size vs Mimalloc (simulated). This is the
/// "aggressive preallocation" MMT needed; it moves the comparison across
/// the §4.1 break-even.
pub fn handshake_batching(scale: Scale) -> Vec<BatchSimRow> {
    handshake_batching_with(&XalancParams::default().scaled(scale.0.max(1)))
}

/// As [`handshake_batching`] with explicit workload parameters.
pub fn handshake_batching_with(params: &XalancParams) -> Vec<BatchSimRow> {
    let (events, warmup) = xalanc::collect_with_warmup(params);
    let mi = {
        let mut machine = Machine::new(ModelKind::Mimalloc.machine(1));
        let mut model = ModelKind::Mimalloc.build(1);
        ngm_simalloc::run_warm(&mut machine, model.as_mut(), events.iter().copied(), warmup)
            .wall_cycles
    };
    [1usize, 4, 16, 64]
        .into_iter()
        .map(|batch| {
            let mut machine = Machine::new(ModelKind::Ngm.machine(1));
            let mut model = NgmBatchModel::new(1, batch);
            let r =
                ngm_simalloc::run_warm(&mut machine, &mut model, events.iter().copied(), warmup);
            BatchSimRow {
                batch,
                ngm_wall: r.wall_cycles,
                speedup_vs_mimalloc: mi as f64 / r.wall_cycles as f64,
            }
        })
        .collect()
}

/// One measured batched-front-end configuration.
#[derive(Debug, Clone)]
pub struct MeasuredBatchRow {
    /// Magazine batch size (1 = batching disabled: today's per-op path).
    pub batch: usize,
    /// Mean round-trip cycles of one service call at this configuration —
    /// the per-op call at batch 1, the magazine refill otherwise.
    pub roundtrip_mean: f64,
    /// Service round-trip cycles charged per allocation once the refill
    /// is amortized over the batch it fetched.
    pub amortized_per_alloc: f64,
}

/// Ablation F, the tentpole measurement: the *real* batched front-end
/// (per-handle magazines + batched free flush) vs the unbatched per-call
/// path, on the live runtime. The amortized column is total round-trip
/// cycles divided by allocations served — the measured counterpart of the
/// §4.1 `T_comm` amortization that [`handshake_batching`] predicts in sim.
pub fn measured_batched_frontend(ops: u32) -> Vec<MeasuredBatchRow> {
    [1usize, 8, 16, 32]
        .into_iter()
        .map(|batch| {
            let ngm = NgmConfig::new()
                .with_batch(batch, batch)
                .build()
                .expect("valid config");
            let mut h = ngm.handle();
            let layout = std::alloc::Layout::from_size_align(64, 8).expect("valid");
            for _ in 0..ops.max(1) {
                let p = h.alloc(layout).expect("alloc");
                // SAFETY: block just allocated, freed once.
                unsafe { h.dealloc(p, layout) };
            }
            // At batch 1 every alloc is a per-op call; otherwise every
            // service round trip on this path is a refill.
            let snap = if batch == 1 {
                ngm.telemetry().call_cycles.snapshot()
            } else {
                ngm.telemetry().refill_cycles.snapshot()
            };
            drop(h);
            drop(ngm);
            MeasuredBatchRow {
                batch,
                roundtrip_mean: snap.mean(),
                amortized_per_alloc: snap.sum() as f64 / f64::from(ops.max(1)),
            }
        })
        .collect()
}

/// Renders [`measured_batched_frontend`] next to the §4.1 model constants
/// and the `ngm_batch` sim prediction, so measurement, analytical model,
/// and simulator can be read side by side.
pub fn render_batched(scale: Scale, real_ops: u32) -> String {
    let rows = measured_batched_frontend(real_ops);
    let unbatched = rows[0].amortized_per_alloc;
    let mut t = Table::new(&[
        "batch",
        "round-trip mean (cyc)",
        "amortized cyc/alloc",
        "vs unbatched",
    ]);
    for r in &rows {
        t.row(vec![
            r.batch.to_string(),
            format!("{:.0}", r.roundtrip_mean),
            format!("{:.0}", r.amortized_per_alloc),
            if r.batch == 1 {
                "1.00x (baseline)".into()
            } else {
                format!("{:.2}x", r.amortized_per_alloc / unbatched.max(1e-9))
            },
        ]);
    }
    let mut out = format!(
        "Ablation F: batched front-end, measured on the real runtime \
         ({} ops/config, {})\n{}\
         §4.1 model: per-request handshake = {} atomics x {} cycles = {} \
         cycles, so amortized cost ~{}/batch + per-item transfer\n\n",
        real_ops,
        ngm_telemetry::clock::source(),
        t.render(),
        ngm_model::ATOMICS_PER_CALL,
        ngm_model::ATOMIC_CYCLES,
        ngm_model::ATOMICS_PER_CALL * ngm_model::ATOMIC_CYCLES,
        ngm_model::ATOMICS_PER_CALL * ngm_model::ATOMIC_CYCLES,
    );
    let mut t = Table::new(&["refill batch", "NGM-batch wall", "speedup vs Mimalloc"]);
    for r in handshake_batching(scale) {
        t.row(vec![
            r.batch.to_string(),
            r.ngm_wall.to_string(),
            format!("{:+.2}%", (r.speedup_vs_mimalloc - 1.0) * 100.0),
        ]);
    }
    out.push_str(&format!(
        "Sim prediction (ngm_batch model, same sweep direction)\n{}",
        t.render()
    ));
    out
}

/// Renders all the ablations.
pub fn render_all(scale: Scale, real_ops: u32) -> String {
    let mut out = String::new();

    let mut t = Table::new(&["client wait strategy", "allocs/sec"]);
    for r in wait_strategies(real_ops) {
        t.row(vec![r.label.into(), format!("{:.0}", r.allocs_per_sec)]);
    }
    out.push_str(&format!(
        "Ablation A: wait strategy (real runtime)\n{}\n",
        t.render()
    ));

    let mut t = Table::new(&["drain batch", "frees/sec"]);
    for r in free_batching(real_ops) {
        t.row(vec![r.batch.to_string(), format!("{:.0}", r.frees_per_sec)]);
    }
    out.push_str(&format!(
        "Ablation B: free drain batch (real runtime)\n{}\n",
        t.render()
    ));

    let mut t = Table::new(&["service core", "wall cycles", "service cycles"]);
    for r in core_types(scale) {
        t.row(vec![
            r.label.into(),
            r.wall_cycles.to_string(),
            r.service_cycles.to_string(),
        ]);
    }
    out.push_str(&format!(
        "Ablation C: core type (simulated, §3.2)\n{}\n",
        t.render()
    ));

    let mut t = Table::new(&["atomic cycles", "NGM wall", "Mimalloc wall", "NGM/Mimalloc"]);
    for r in atomic_latency(scale) {
        t.row(vec![
            r.atomic_cycles.to_string(),
            r.ngm_wall.to_string(),
            r.mimalloc_wall.to_string(),
            format!("{:.3}", r.ngm_wall as f64 / r.mimalloc_wall as f64),
        ]);
    }
    out.push_str(&format!(
        "Ablation D: atomic-RMW latency sweep (simulated, §4.1)\n{}\n",
        t.render()
    ));

    let measured = measured_comm(real_ops);
    let rows: Vec<(&str, &HistogramSnapshot)> =
        measured.iter().map(|r| (r.op, &r.snapshot)).collect();
    out.push_str(&format!(
        "Ablation D (measured): T_comm on this machine, {} per op\n{}\
         §4.1 model: handshake = {} atomics -> ~{} cycles uncontended \
         ({}/atomic), ~{} contended worst case ({}/atomic)\n\n",
        ngm_telemetry::clock::source(),
        latency_table(&rows),
        ngm_model::ATOMICS_PER_CALL,
        ngm_model::ATOMICS_PER_CALL * ngm_model::ATOMIC_CYCLES,
        ngm_model::ATOMIC_CYCLES,
        ngm_model::ATOMICS_PER_CALL * ngm_model::ATOMIC_CYCLES_WORST,
        ngm_model::ATOMIC_CYCLES_WORST,
    ));

    let mut t = Table::new(&["refill batch", "NGM-batch wall", "speedup vs Mimalloc"]);
    for r in handshake_batching(scale) {
        t.row(vec![
            r.batch.to_string(),
            r.ngm_wall.to_string(),
            format!("{:+.2}%", (r.speedup_vs_mimalloc - 1.0) * 100.0),
        ]);
    }
    out.push_str(&format!(
        "Ablation E: handshake batching (simulated; MMT's preallocation lesson)\n{}\n",
        t.render()
    ));

    out.push_str(&render_batched(scale, real_ops));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_type_changes_service_cycles() {
        let rows = core_types_with(&XalancParams::small());
        assert_eq!(rows.len(), 3);
        let big = rows[0].service_cycles;
        let little = rows[1].service_cycles;
        assert!(little > big, "in-order core must be slower at service work");
    }

    #[test]
    fn atomic_latency_hurts_ngm_more() {
        let rows = atomic_latency_with(&XalancParams::small());
        let cheap = &rows[0];
        let dear = rows.last().expect("non-empty sweep");
        let ngm_growth = dear.ngm_wall as f64 / cheap.ngm_wall as f64;
        let mi_growth = dear.mimalloc_wall as f64 / cheap.mimalloc_wall as f64;
        assert!(
            ngm_growth > mi_growth,
            "NGM ({ngm_growth}) must be more atomic-sensitive than Mimalloc ({mi_growth})"
        );
    }

    #[test]
    fn ngm_gap_narrows_as_atomics_cheapen() {
        // The section 4.1 crossover direction: the cheaper the sync, the
        // closer NGM gets to (or past) Mimalloc.
        let rows = atomic_latency_with(&XalancParams::small());
        let ratio = |r: &AtomicRow| r.ngm_wall as f64 / r.mimalloc_wall as f64;
        for w in rows.windows(2) {
            assert!(
                ratio(&w[0]) <= ratio(&w[1]) + 1e-9,
                "NGM/Mimalloc ratio must grow with atomic latency"
            );
        }
        // At the contended worst case (700 cycles) offloading is clearly
        // uneconomical — the paper's own feasibility caveat.
        assert!(ratio(rows.last().unwrap()) > 1.05);
    }

    #[test]
    fn batching_monotonically_helps() {
        let rows = handshake_batching_with(&XalancParams::small());
        for w in rows.windows(2) {
            // Monotone up to measurement noise: very large batches stop
            // helping (the handshake is already amortized away) and may
            // regress slightly from response-transfer volume.
            assert!(
                w[1].ngm_wall as f64 <= w[0].ngm_wall as f64 * 1.02,
                "bigger batches must not be clearly slower: {:?}",
                rows
            );
        }
        // With a healthy batch the offloaded allocator reaches at least
        // parity with Mimalloc — the paper's Table 3 regime.
        let best = rows.last().expect("non-empty");
        assert!(
            best.speedup_vs_mimalloc > 0.97,
            "batch {} should approach parity, got {:+.2}%",
            best.batch,
            (best.speedup_vs_mimalloc - 1.0) * 100.0
        );
    }

    #[test]
    fn real_wait_strategies_complete() {
        // Tiny op count: this is a smoke test, not a measurement.
        let rows = wait_strategies(200);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.allocs_per_sec > 0.0));
    }

    #[test]
    fn real_batching_completes() {
        let rows = free_batching(200);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.frees_per_sec > 0.0));
    }

    #[test]
    fn batched_frontend_beats_unbatched_per_call() {
        let rows = measured_batched_frontend(2_000);
        assert_eq!(rows[0].batch, 1, "baseline first");
        let unbatched = rows[0].amortized_per_alloc;
        assert!(unbatched > 0.0);
        for r in rows.iter().filter(|r| r.batch >= 8) {
            assert!(
                r.amortized_per_alloc < unbatched,
                "batch {} amortized {:.0} must beat unbatched {:.0}",
                r.batch,
                r.amortized_per_alloc,
                unbatched
            );
        }
    }

    #[test]
    fn measured_comm_counts_every_op() {
        let rows = measured_comm(300);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.snapshot.count(), 300, "{} lost samples", r.op);
            assert!(r.snapshot.p50() <= r.snapshot.p99());
            assert!(r.snapshot.p99() <= r.snapshot.max());
        }
    }
}
