//! Shards ablation: how wide should the allocator's "own room" be?
//!
//! The paper dedicates *one* service core (§3.1.3); this ablation
//! generalizes it to a tier of N sharded service cores and measures when
//! the extra rooms pay. The simulated half crosses shard count × client
//! count on a malloc-heavy churn workload: with few clients one service
//! core keeps up and sharding buys little, but as clients grow the single
//! core saturates and the tier divides the bottleneck. The real-runtime
//! half runs the same shape on the live sharded [`ngm_core::Ngm`] and
//! verifies the routing invariant that makes the tier correct at all:
//! every shard balances `allocs == frees` exactly, even though clients
//! free blocks cross-thread.

use std::sync::Arc;

use ngm_sim::Machine;
use ngm_simalloc::{run_warm, NgmShardedModel};
use ngm_workloads::churn::{self, ChurnParams};

use crate::Scale;

/// Shard counts crossed by the ablation.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Client (application-core) counts crossed by the ablation.
pub const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One simulated cell: a (shards, clients) pair.
#[derive(Debug, Clone, Copy)]
pub struct ShardCell {
    /// Service shards in the tier.
    pub shards: usize,
    /// Application cores issuing malloc/free.
    pub clients: usize,
    /// Simulated wall cycles for the whole replay.
    pub wall_cycles: u64,
    /// Allocations per million wall cycles (the throughput figure).
    pub allocs_per_mcycle: f64,
}

/// The full simulated grid plus the real-runtime validation rows.
#[derive(Debug, Clone)]
pub struct ShardsReport {
    /// One cell per (shards, clients) pair, row-major by shard count.
    pub cells: Vec<ShardCell>,
    /// Real-runtime rows, one per shard count.
    pub real: Vec<RealShardRow>,
}

/// One real-runtime measurement: the live sharded tier under churning
/// client threads.
#[derive(Debug, Clone)]
pub struct RealShardRow {
    /// Service shards in the tier.
    pub shards: usize,
    /// Client threads used.
    pub clients: usize,
    /// Wall-clock seconds for the churn loop.
    pub secs: f64,
    /// Allocations per second across all clients.
    pub allocs_per_sec: f64,
    /// Whether every shard balanced `allocs == frees` at shutdown.
    pub balanced: bool,
    /// Per-shard allocation counts (the tier's load spread).
    pub per_shard_allocs: Vec<u64>,
}

/// A malloc-heavy multi-class churn: sizes span several size classes so
/// the class → shard map spreads traffic across the whole tier, and
/// touches/compute are minimal so the allocator dominates — the regime
/// where the service tier is the bottleneck.
fn workload(clients: usize, scale: Scale) -> Vec<ngm_workloads::Event> {
    churn::collect(&ChurnParams {
        threads: clients as u8,
        total_allocs: 4_000 * (scale.0.max(1)) * clients as u32,
        live_cap: 128,
        size_range: (16, 2048),
        free_percent: 45,
        touch_percent: 5,
        compute_per_step: 4,
        seed: 0x5ead5,
    })
}

/// Runs the simulated grid.
pub fn run(scale: Scale) -> ShardsReport {
    let mut cells = Vec::new();
    for &shards in &SHARD_COUNTS {
        for &clients in &CLIENT_COUNTS {
            let events = workload(clients, scale);
            let allocs = events
                .iter()
                .filter(|e| matches!(e, ngm_workloads::Event::Malloc { .. }))
                .count() as f64;
            let mut svc = ngm_sim::CoreConfig::big();
            svc.l2 = ngm_sim::CacheConfig::kib(1024, 16);
            let mut machine = Machine::new(ngm_sim::MachineConfig::asymmetric_many(
                clients, shards, svc,
            ));
            let mut model = NgmShardedModel::new(clients, shards);
            let r = run_warm(&mut machine, &mut model, events.into_iter(), 0);
            assert_eq!(r.leaked, 0, "balanced stream");
            cells.push(ShardCell {
                shards,
                clients,
                wall_cycles: r.wall_cycles,
                allocs_per_mcycle: allocs / (r.wall_cycles as f64 / 1e6),
            });
        }
    }
    ShardsReport {
        cells,
        real: CLIENT_COUNTS
            .iter()
            .rev()
            .take(1) // the saturated case: most clients
            .flat_map(|&clients| {
                SHARD_COUNTS
                    .iter()
                    .map(move |&shards| run_real(shards, clients, scale, false))
            })
            .collect(),
    }
}

/// Runs the churn shape on the live runtime with `shards` service
/// threads and `clients` client threads. With `profile` the runtime also
/// arms PMU sessions (the `--hw` path).
pub fn run_real(shards: usize, clients: usize, scale: Scale, profile: bool) -> RealShardRow {
    use std::alloc::Layout;

    let ngm = Arc::new(
        ngm_core::NgmConfig::new()
            .with_shards(shards)
            .with_batch(16, 8)
            .with_placement(ngm_core::CorePlacement::Unpinned)
            .with_profile(profile)
            .build()
            .expect("valid config"),
    );
    let per_thread = 20_000usize * scale.0.max(1) as usize;
    let start = std::time::Instant::now();
    let joins: Vec<_> = (0..clients)
        .map(|t| {
            let ngm = Arc::clone(&ngm);
            std::thread::spawn(move || {
                let mut h = ngm.handle();
                let mut live: Vec<(std::ptr::NonNull<u8>, Layout)> = Vec::new();
                for i in 0..per_thread {
                    // Sizes sweep eight consecutive classes so `class % n`
                    // spreads traffic across the whole tier.
                    let size = 16 * (1 + (i + t) % 8);
                    let l = Layout::from_size_align(size, 8).expect("valid");
                    live.push((h.alloc(l).expect("alloc"), l));
                    if live.len() > 64 {
                        let (p, l) = live.swap_remove((i * 31) % live.len());
                        // SAFETY: live block from this allocator.
                        unsafe { h.dealloc(p, l) };
                    }
                }
                for (p, l) in live {
                    // SAFETY: live block from this allocator.
                    unsafe { h.dealloc(p, l) };
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("worker");
    }
    let secs = start.elapsed().as_secs_f64();
    let ngm = Arc::into_inner(ngm).expect("all clones dropped");
    let down = ngm.shutdown();
    RealShardRow {
        shards,
        clients,
        secs,
        allocs_per_sec: (clients * per_thread) as f64 / secs,
        balanced: down.clean() && down.balanced(),
        per_shard_allocs: down.shards.iter().map(|s| s.service.allocs).collect(),
    }
}

impl ShardsReport {
    /// The simulated speedup of `shards` over one shard at `clients`.
    pub fn sim_speedup(&self, shards: usize, clients: usize) -> f64 {
        let wall = |s: usize| {
            self.cells
                .iter()
                .find(|c| c.shards == s && c.clients == clients)
                .expect("cell in grid")
                .wall_cycles as f64
        };
        wall(1) / wall(shards)
    }

    /// Renders the grid, the speedup line, and the real-runtime rows.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## Shards ablation — service-tier width (simulated)\n");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>16} {:>16}",
            "shards", "clients", "wall cycles", "allocs/Mcycle"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>16} {:>16.1}",
                c.shards, c.clients, c.wall_cycles, c.allocs_per_mcycle
            );
        }
        let clients = *CLIENT_COUNTS.last().expect("non-empty");
        let _ = writeln!(out);
        for &s in &SHARD_COUNTS[1..] {
            let _ = writeln!(
                out,
                "speedup at {clients} clients, {s} shards vs 1: {:.2}x",
                self.sim_speedup(s, clients)
            );
        }
        if !self.real.is_empty() {
            let _ = writeln!(out, "\n### Real runtime (wall clock, per-shard balance)\n");
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>12} {:>14}  {:<9} per-shard allocs",
                "shards", "clients", "secs", "allocs/sec", "balanced"
            );
            for r in &self.real {
                let _ = writeln!(
                    out,
                    "{:<8} {:>8} {:>12.3} {:>14.0}  {:<9} {:?}",
                    r.shards, r.clients, r.secs, r.allocs_per_sec, r.balanced, r.per_shard_allocs
                );
            }
        }
        out
    }
}

/// The `--hw` variant: reruns the saturated real-runtime case with PMU
/// profiling armed and renders the per-shard report.
pub fn run_hw(scale: Scale) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "## Shards ablation — hardware counters\n");
    let clients = *CLIENT_COUNTS.last().expect("non-empty");
    for &shards in &SHARD_COUNTS {
        use std::alloc::Layout;
        let ngm = Arc::new(
            ngm_core::NgmConfig::new()
                .with_shards(shards)
                .with_placement(ngm_core::CorePlacement::Unpinned)
                .with_profile(true)
                .build()
                .expect("valid config"),
        );
        let joins: Vec<_> = (0..clients)
            .map(|t| {
                let ngm = Arc::clone(&ngm);
                std::thread::spawn(move || {
                    let mut h = ngm.handle();
                    for i in 0..8_000usize * scale.0.max(1) as usize {
                        let size = 16 * (1 + (i + t) % 8);
                        let l = Layout::from_size_align(size, 8).expect("valid");
                        let p = h.alloc(l).expect("alloc");
                        // SAFETY: block just allocated, freed once.
                        unsafe { h.dealloc(p, l) };
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().expect("worker");
        }
        let ngm = Arc::into_inner(ngm).expect("all clones dropped");
        let report = ngm.pmu_report();
        let down = ngm.shutdown();
        let _ = writeln!(
            out,
            "### {shards} shard(s), {clients} clients — balanced: {}",
            down.clean() && down.balanced()
        );
        match report {
            Some(r) => {
                let _ = writeln!(out, "{}", r.render());
            }
            None => {
                let _ = writeln!(out, "(no PMU readings deposited — perf events unavailable)");
            }
        }
    }
    out
}
