//! §4.1: the analytical break-even model, printed with the paper's
//! constants and the sweeps behind ablation D.

use ngm_model::{BreakEven, ATOMIC_CYCLES_WORST};

use crate::report::{sci, Table};

/// The model evaluation.
#[derive(Debug, Clone)]
pub struct Model41 {
    /// The paper-constant configuration.
    pub model: BreakEven,
    /// Atomic-latency sweep at the break-even miss reduction.
    pub latency_sweep: Vec<(u64, f64)>,
}

/// Runs the evaluation.
pub fn run() -> Model41 {
    let model = BreakEven::default();
    let latency_sweep = model.sweep_atomic_latency((20..=700).step_by(68), 1.25);
    Model41 {
        model,
        latency_sweep,
    }
}

impl Model41 {
    /// Renders the §4.1 numbers.
    pub fn render(&self) -> String {
        let m = &self.model;
        let mut t = Table::new(&["quantity", "value", "paper"]);
        t.row(vec![
            "malloc calls".into(),
            m.mallocs.to_string(),
            "138,401,260".into(),
        ]);
        t.row(vec![
            "free calls".into(),
            m.frees.to_string(),
            "141,394,145".into(),
        ]);
        t.row(vec![
            "atomic latency (cycles)".into(),
            m.atomic_cycles.to_string(),
            "67".into(),
        ]);
        t.row(vec![
            "added cycles".into(),
            sci(m.overhead_cycles() as f64),
            "~75E+09".into(),
        ]);
        t.row(vec![
            "avg miss penalty (cycles)".into(),
            format!("{:.0}", m.miss_penalty),
            "214".into(),
        ]);
        t.row(vec![
            "required miss reduction / call".into(),
            format!("{:.2}", m.required_miss_reduction()),
            "1.25".into(),
        ]);
        let mut sweep = Table::new(&["atomic cycles", "net cycles saved @1.25 misses"]);
        for (lat, net) in &self.latency_sweep {
            sweep.row(vec![lat.to_string(), sci(*net)]);
        }
        format!(
            "Section 4.1: analytical break-even model\n{}\nAtomic-latency sweep (ablation D input; worst case {} cycles):\n{}",
            t.render(),
            ATOMIC_CYCLES_WORST,
            sweep.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_constants() {
        let s = run().render();
        assert!(s.contains("138401260"));
        assert!(s.contains("1.25"));
        assert!(s.contains("~75E+09"));
    }

    #[test]
    fn sweep_crosses_zero_near_67_cycles() {
        let m = run();
        // At the paper's operating point (67 cycles, 1.25 misses) the
        // model sits at break-even; below it the net is positive.
        let below: Vec<_> = m.latency_sweep.iter().filter(|(l, _)| *l < 67).collect();
        let above: Vec<_> = m.latency_sweep.iter().filter(|(l, _)| *l > 67).collect();
        assert!(below.iter().all(|(_, net)| *net > 0.0));
        assert!(above.iter().all(|(_, net)| *net < 0.0));
    }
}
