//! Table 3: NextGen-Malloc vs. Mimalloc on `xalancbmk`.
//!
//! Paper: the prototype (pinned service thread, atomic-flag handshake) is
//! 4.51 % faster than Mimalloc, "coming from a reduction of dTLB load,
//! LLC load, and LLC store misses". Two views here:
//!
//! * **Simulated** — both models on the A72-like machine; NGM's heap
//!   metadata lives on the service core, so application-core misses drop.
//! * **Prototype wall-clock** — the real `ngm-core` runtime against the
//!   real mimalloc-style sharded heap on this machine (indicative only on
//!   a 1-vCPU box; see DESIGN.md §5).

use ngm_sim::{Machine, PmuCounters};
use ngm_simalloc::ngm::{NgmModel, Protocol};
use ngm_simalloc::ModelKind;
use ngm_workloads::xalanc::{self, XalancParams};

use crate::replay::{replay_heap, replay_ngm};
use crate::report::{mpki, sci, Table};
use crate::Scale;

/// Row extractor over simulated PMU counters.
type CounterFn = fn(&PmuCounters) -> f64;
/// Row extractor over one Table 3 column.
type ColFn = fn(&Table3Col) -> f64;

/// One allocator column.
#[derive(Debug, Clone)]
pub struct Table3Col {
    /// Allocator name.
    pub name: &'static str,
    /// Application-core counters (what pollutes the app).
    pub app: PmuCounters,
    /// Service-core counters (NGM only; zeroes otherwise).
    pub service: PmuCounters,
    /// Wall cycles (max over cores).
    pub wall_cycles: u64,
}

/// The table's data.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Mimalloc, NGM (detailed accounting), NGM (section 4.1 accounting).
    pub cols: Vec<Table3Col>,
    /// Wall-clock seconds for the real-prototype replays, if run:
    /// `(mimalloc-style sharded, ngm offloaded)`.
    pub prototype_secs: Option<(f64, f64)>,
}

/// Runs the simulated comparison; `with_prototype` also replays the real
/// heaps for a wall-clock side table.
pub fn run(scale: Scale, with_prototype: bool) -> Table3 {
    run_with(
        &XalancParams::default().scaled(scale.0.max(1)),
        with_prototype,
    )
}

/// As [`run`] with explicit workload parameters.
pub fn run_with(params: &XalancParams, with_prototype: bool) -> Table3 {
    let (events, warmup) = xalanc::collect_with_warmup(params);

    let mut cols = Vec::new();
    {
        let r = ngm_simalloc::driver::run_kind_warm(
            ModelKind::Mimalloc,
            1,
            events.iter().copied(),
            warmup,
        );
        cols.push(Table3Col {
            name: "Mimalloc",
            app: r.app_total(1),
            service: PmuCounters::default(),
            wall_cycles: r.wall_cycles,
        });
    }
    for (name, protocol) in [
        ("NGM (detailed sync)", Protocol::Detailed),
        ("NGM (sec-4.1 sync)", Protocol::PaperModel),
    ] {
        let mut machine = Machine::new(ModelKind::Ngm.machine(1));
        let mut model = NgmModel::with_protocol(1, protocol);
        let r = ngm_simalloc::driver::run_warm(
            &mut machine,
            &mut model,
            events.iter().copied(),
            warmup,
        );
        cols.push(Table3Col {
            name,
            app: r.app_total(1),
            service: *r.per_core.last().expect("service core"),
            wall_cycles: r.wall_cycles,
        });
    }

    let prototype_secs = with_prototype.then(|| {
        // Mimalloc-style: a sharded per-thread heap (single shard here —
        // the workload is single-threaded, as is SPEC's xalancbmk).
        let sharded = ngm_heap::ShardedHeap::new(1);
        let mut handle = sharded.handle(0);
        let a = replay_heap(&mut handle, events.iter().copied());

        let ngm = ngm_core::Ngm::start();
        let mut h = ngm.handle();
        let b = replay_ngm(&mut h, events.iter().copied());
        assert_eq!(a.checksum, b.checksum, "replays must compute identically");
        (a.elapsed.as_secs_f64(), b.elapsed.as_secs_f64())
    });

    Table3 {
        cols,
        prototype_secs,
    }
}

impl Table3 {
    /// Simulated speedup of NGM over Mimalloc under detailed sync
    /// accounting.
    pub fn speedup_detailed(&self) -> f64 {
        self.cols[0].wall_cycles as f64 / self.cols[1].wall_cycles as f64
    }

    /// Simulated speedup under the paper's section 4.1 sync accounting
    /// (paper: 1.0451x).
    pub fn speedup_paper_model(&self) -> f64 {
        self.cols[0].wall_cycles as f64 / self.cols[2].wall_cycles as f64
    }

    /// Renders the side-by-side comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["metric", "Mimalloc", "NGM (detailed)", "NGM (sec-4.1)"]);
        let rows: [(&str, ColFn); 6] = [
            ("cycles (wall)", |c| c.wall_cycles as f64),
            ("instructions (app)", |c| c.app.instructions as f64),
            ("LLC-load-misses (app)", |c| c.app.llc_load_misses as f64),
            ("LLC-store-misses (app)", |c| c.app.llc_store_misses as f64),
            ("dTLB-load-misses (app)", |c| c.app.dtlb_load_misses as f64),
            ("dTLB-store-misses (app)", |c| {
                c.app.dtlb_store_misses as f64
            }),
        ];
        for (label, get) in rows {
            t.row(vec![
                label.to_string(),
                sci(get(&self.cols[0])),
                sci(get(&self.cols[1])),
                sci(get(&self.cols[2])),
            ]);
        }
        let mut rates = Table::new(&["metric", "Mimalloc", "NGM (detailed)", "NGM (sec-4.1)"]);
        let rrows: [(&str, CounterFn); 2] = [
            ("LLC-load-MPKI (app)", PmuCounters::llc_load_mpki),
            ("dTLB-load-MPKI (app)", PmuCounters::dtlb_load_mpki),
        ];
        for (label, get) in rrows {
            rates.row(vec![
                label.to_string(),
                mpki(get(&self.cols[0].app)),
                mpki(get(&self.cols[1].app)),
                mpki(get(&self.cols[2].app)),
            ]);
        }
        let mut s = format!(
            "Table 3: Mimalloc vs NextGen-Malloc on xalancbmk (simulated)\n{}\n{}\nspeedup, detailed sync accounting: {:+.2}%\nspeedup, paper's sec-4.1 sync accounting: {:+.2}% [paper measured: +4.51%]\nservice-core misses (NGM, run concurrently): LLC-load {}, dTLB-load {}\n",
            t.render(),
            rates.render(),
            (self.speedup_detailed() - 1.0) * 100.0,
            (self.speedup_paper_model() - 1.0) * 100.0,
            sci(self.cols[1].service.llc_load_misses as f64),
            sci(self.cols[1].service.dtlb_load_misses as f64),
        );
        if let Some((mi, ngm)) = self.prototype_secs {
            s.push_str(&format!(
                "\nprototype wall-clock on this machine: sharded(mimalloc-style) {mi:.3}s, NGM offloaded {ngm:.3}s ({:+.2}%)\n(1-vCPU boxes timeshare the service core; treat as indicative)\n",
                (mi / ngm - 1.0) * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table3 {
        run_with(&XalancParams::small(), false)
    }

    #[test]
    fn ngm_halves_app_side_tlb_pollution() {
        let t = small();
        let mi = &t.cols[0];
        let ngm = &t.cols[1];
        // The paper's stated mechanism reproduces: NGM's application core
        // sees far fewer dTLB misses (metadata moved to the service core).
        assert!(
            (ngm.app.dtlb_load_misses as f64) < 0.8 * mi.app.dtlb_load_misses as f64,
            "NGM app dTLB {} vs Mimalloc {}",
            ngm.app.dtlb_load_misses,
            mi.app.dtlb_load_misses
        );
        assert!(ngm.app.llc_load_misses <= mi.app.llc_load_misses);
    }

    #[test]
    fn speedups_are_plausible_and_ordered() {
        let t = small();
        let detailed = t.speedup_detailed();
        let paper = t.speedup_paper_model();
        // The cheaper (paper) sync accounting can only help.
        assert!(
            paper >= detailed - 1e-9,
            "paper-model accounting must not be slower: {paper} vs {detailed}"
        );
        // Both land in a plausible band around the paper's +4.51%: our
        // faithful sync costs put the net at or below break-even (see
        // EXPERIMENTS.md for the crossover analysis).
        assert!(
            (0.6..1.3).contains(&detailed),
            "detailed speedup {detailed}"
        );
        assert!((0.6..1.3).contains(&paper), "paper-model speedup {paper}");
    }

    #[test]
    fn service_core_absorbs_metadata_misses() {
        let t = small();
        let ngm = &t.cols[1];
        assert!(ngm.service.instructions > 0);
        assert!(
            ngm.service.meta_llc_misses + ngm.service.llc_load_misses > 0,
            "service core should own the metadata traffic"
        );
    }

    #[test]
    fn render_reports_both_accountings() {
        let s = small().render();
        assert!(s.contains("detailed sync accounting"));
        assert!(s.contains("4.51%"));
    }
}
