//! A dependency-free, single-threaded mini-executor.
//!
//! Exists so the `conns` experiment (and anything else in this crate)
//! can drive [`ngm_core::AllocFuture`]s without pulling an async
//! runtime into the build: the whole point of the completion-based
//! front-end is that a std-`Future` works on *any* executor, and this
//! is the smallest one that exercises real cross-thread wakes — the
//! service thread fires the slot waker, which lands the task id back on
//! this executor's ready queue.
//!
//! Tasks are `!Send` futures (allocator handles and submission queues
//! are per-thread objects); only the *wakers* cross threads.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Wake, Waker};

/// The cross-thread half: woken task ids, and a condvar so the executor
/// sleeps instead of spinning when every task is parked.
struct ReadyQueue {
    woken: Mutex<VecDeque<usize>>,
    signal: Condvar,
}

impl ReadyQueue {
    fn push(&self, id: usize) {
        self.woken
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(id);
        self.signal.notify_one();
    }
}

/// One task's waker: re-enqueues its id. Cheap to clone, `Send + Sync`,
/// and safe to fire from the service thread (it only touches the ready
/// queue, never executor or task state).
struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A single-threaded run-to-completion executor.
///
/// ```ignore
/// let mut ex = MiniExecutor::new();
/// ex.spawn(async { /* ... */ });
/// ex.run(); // polls until every spawned task completes
/// ```
pub struct MiniExecutor {
    tasks: Vec<Option<Pin<Box<dyn Future<Output = ()>>>>>,
    /// One waker per task, built at spawn and reused across polls — a
    /// fresh `Arc` per poll would put an allocation on every event of a
    /// fast-path task.
    wakers: Vec<Waker>,
    ready: Arc<ReadyQueue>,
    live: usize,
}

impl Default for MiniExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl MiniExecutor {
    /// An executor with no tasks.
    pub fn new() -> Self {
        MiniExecutor {
            tasks: Vec::new(),
            wakers: Vec::new(),
            ready: Arc::new(ReadyQueue {
                woken: Mutex::new(VecDeque::new()),
                signal: Condvar::new(),
            }),
            live: 0,
        }
    }

    /// Queues `fut` to run; it is first polled inside [`MiniExecutor::run`].
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        let id = self.tasks.len();
        self.tasks.push(Some(Box::pin(fut)));
        self.wakers.push(Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        })));
        self.live += 1;
        self.ready.push(id);
    }

    /// Tasks spawned and not yet completed.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Polls woken tasks until every spawned task has completed.
    ///
    /// When the run queue drains, the executor first *yields* the core —
    /// for a long while — the next wake comes from a service thread that needs
    /// exactly this core on small machines, and `yield_now` hands it
    /// over without the futex sleep/wake a condvar park would put on
    /// every completion wave (the same trade the blocking client's wait
    /// strategy makes). Only a persistently empty queue falls back to
    /// the condvar.
    pub fn run(&mut self) {
        const YIELDS: u32 = 100_000;
        // Woken ids are drained in whole batches under one lock — with
        // thousands of tasks waking in waves, a lock round-trip per id
        // would dominate the dispatch loop.
        let mut batch: VecDeque<usize> = VecDeque::new();
        while self.live > 0 {
            if batch.is_empty() {
                'fill: {
                    for _ in 0..YIELDS {
                        {
                            let mut woken = self
                                .ready
                                .woken
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner);
                            if !woken.is_empty() {
                                std::mem::swap(&mut *woken, &mut batch);
                                break 'fill;
                            }
                        }
                        std::thread::yield_now();
                    }
                    let mut woken = self
                        .ready
                        .woken
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    while woken.is_empty() {
                        woken = self
                            .ready
                            .signal
                            .wait(woken)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    std::mem::swap(&mut *woken, &mut batch);
                }
            }
            let Some(id) = batch.pop_front() else {
                continue;
            };
            // Spurious wake of a finished task: ignore (the slot waker
            // may fire for a task whose poll already collected).
            let Some(task) = self.tasks[id].as_mut() else {
                continue;
            };
            let mut cx = Context::from_waker(&self.wakers[id]);
            if task.as_mut().poll(&mut cx).is_ready() {
                self.tasks[id] = None;
                self.live -= 1;
            }
        }
        self.tasks.clear();
        self.wakers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use std::task::Poll;

    /// A future that completes after being woken `n` times from another
    /// thread.
    struct CountDown {
        remaining: u32,
    }

    impl Future for CountDown {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.remaining == 0 {
                return Poll::Ready(());
            }
            self.remaining -= 1;
            let w = cx.waker().clone();
            std::thread::spawn(move || w.wake());
            Poll::Pending
        }
    }

    #[test]
    fn drives_many_tasks_with_cross_thread_wakes() {
        let mut ex = MiniExecutor::new();
        let done = Rc::new(Cell::new(0u32));
        for i in 0..50 {
            let done = Rc::clone(&done);
            ex.spawn(async move {
                CountDown { remaining: i % 4 }.await;
                done.set(done.get() + 1);
            });
        }
        ex.run();
        assert_eq!(done.get(), 50);
        assert_eq!(ex.live(), 0);
    }
}
