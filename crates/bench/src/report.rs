//! Plain-text table rendering for the repro harness.

use ngm_telemetry::clock::cycles_to_ns;
use ngm_telemetry::hist::HistogramSnapshot;

/// A simple aligned table: a header row plus data rows.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with space-padded, right-aligned data columns (first
    /// column left-aligned).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[0]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Renders named latency-histogram snapshots as a count/percentile table.
/// Histograms record TSC cycles ([`ngm_telemetry::clock::cycles_now`]);
/// each percentile is shown in cycles and, via the calibrated
/// cycles-per-ns ratio, in wall-clock nanoseconds.
pub fn latency_table(rows: &[(&str, &HistogramSnapshot)]) -> String {
    let mut t = Table::new(&[
        "op kind", "count", "p50", "p90", "p99", "max", "p50 ns", "p99 ns",
    ]);
    for (name, h) in rows {
        t.row(vec![
            (*name).to_string(),
            h.count().to_string(),
            h.p50().to_string(),
            h.p90().to_string(),
            h.p99().to_string(),
            h.max().to_string(),
            cycles_to_ns(h.p50()).to_string(),
            cycles_to_ns(h.p99()).to_string(),
        ]);
    }
    t.render()
}

/// Formats a count in the paper's scientific notation (e.g. `1.177E+12`).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    format!("{mant:.3}E{exp:+03}")
}

/// Formats a ratio as `1.72x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats an MPKI value with three decimals, as in Table 1.
pub fn mpki(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["Allocator", "cycles"]);
        t.row(vec!["PTMalloc2".into(), "1.177E+12".into()]);
        t.row(vec!["Mimalloc".into(), "6.959E+11".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Allocator"));
        assert!(lines[2].ends_with("1.177E+12"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_width_panics() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(sci(1.177e12), "1.177E+12");
        assert_eq!(sci(0.317), "3.170E-01");
        assert_eq!(sci(0.0), "0");
    }

    #[test]
    fn ratio_and_mpki_format() {
        assert_eq!(ratio(1.7233), "1.72x");
        assert_eq!(mpki(0.3171), "0.317");
    }

    #[test]
    fn latency_table_renders_percentiles() {
        let h = ngm_telemetry::hist::LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let s = latency_table(&[("malloc call", &snap)]);
        assert!(s.contains("malloc call"));
        assert!(s.contains("p99"));
        assert!(s.contains("p50 ns"), "both units are shown: {s}");
        assert!(s.lines().count() == 3, "header, rule, one row: {s}");
    }
}
