//! Converts drained telemetry traces into replayable workload streams.
//!
//! A [`TraceRing`](ngm_telemetry::trace::TraceRing) records what the
//! runtime actually did — `Alloc(size, rtt)` and `Free(size, _)` events
//! per thread — but without object identities: the trace deliberately
//! carries no addresses. This module reconstructs identities so a trace
//! captured from one run becomes an [`Event`] stream that
//! [`replay_heap`](crate::replay::replay_heap) (or any workload consumer)
//! can replay against another allocator.
//!
//! Identity reconstruction is per-thread FIFO within a size: the n-th
//! `Free` of size `s` on thread `t` is matched to the n-th outstanding
//! `Alloc` of size `s` on thread `t`. That is exact for the runtime's own
//! handles (a handle is single-threaded and the service serves it in
//! order) and a standard approximation for anything fancier. Frees whose
//! allocation fell outside the capture window (ring overflow, tracing
//! enabled mid-run) are dropped and counted, and blocks still live at the
//! end of the trace get trailing frees appended — the output stream
//! always terminates with an empty heap, which replayers assert.

use std::collections::{HashMap, VecDeque};

use ngm_telemetry::trace::{TraceEvent, TraceEventKind};
use ngm_workloads::Event;

/// Result of a trace conversion.
#[derive(Debug, Clone, Default)]
pub struct TraceConversion {
    /// The replayable stream: one `Malloc` per traced `Alloc`, one `Free`
    /// per matched traced `Free`, plus trailing frees for blocks the
    /// trace left live.
    pub events: Vec<Event>,
    /// Traced frees with no outstanding allocation to match (allocation
    /// predates the capture window or was dropped on ring overflow).
    pub unmatched_frees: u64,
    /// Frees appended at the end for blocks the trace left live.
    pub trailing_frees: u64,
}

/// Converts a drained trace (sorted or not) into a replayable stream.
///
/// Non-allocation events (`Post`, `Refill`, `WaitTransition`, `Span`,
/// `Scale`) are skipped: they describe the transport, the request
/// lifecycle, and the tier's shape, not the heap.
pub fn convert(trace: &[TraceEvent]) -> TraceConversion {
    let mut sorted: Vec<&TraceEvent> = trace.iter().collect();
    sorted.sort_by_key(|e| e.tsc);

    let mut out = TraceConversion::default();
    // (thread, size) -> outstanding object ids, oldest first.
    let mut outstanding: HashMap<(u32, u64), VecDeque<u64>> = HashMap::new();
    // Alloc order of still-live ids, for deterministic trailing frees.
    let mut live: Vec<(u32, u64)> = Vec::new();
    let mut freed: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut next_id = 0u64;

    for e in &sorted {
        let thread = e.thread as u8;
        let size = e.a.min(u64::from(u32::MAX)) as u32;
        match e.kind {
            TraceEventKind::Alloc => {
                let id = next_id;
                next_id += 1;
                outstanding
                    .entry((e.thread, e.a))
                    .or_default()
                    .push_back(id);
                live.push((e.thread, id));
                out.events.push(Event::Malloc { thread, id, size });
            }
            TraceEventKind::Free => {
                match outstanding
                    .get_mut(&(e.thread, e.a))
                    .and_then(VecDeque::pop_front)
                {
                    Some(id) => {
                        freed.insert(id);
                        out.events.push(Event::Free { thread, id });
                    }
                    None => out.unmatched_frees += 1,
                }
            }
            TraceEventKind::Post
            | TraceEventKind::Refill
            | TraceEventKind::WaitTransition
            | TraceEventKind::Span
            | TraceEventKind::Scale => {}
        }
    }

    for (thread, id) in live {
        if !freed.contains(&id) {
            out.trailing_frees += 1;
            out.events.push(Event::Free {
                thread: thread as u8,
                id,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_heap;
    use ngm_core::NgmConfig;
    use ngm_heap::SegregatedHeap;

    fn ev(tsc: u64, thread: u32, kind: TraceEventKind, a: u64) -> TraceEvent {
        TraceEvent {
            tsc,
            thread,
            kind,
            a,
            b: 0,
        }
    }

    #[test]
    fn runtime_trace_replays_against_a_fresh_heap() {
        let ngm = NgmConfig::new()
            .with_trace_capacity(4096)
            .build()
            .expect("valid config");
        let mut h = ngm.handle();
        let mut blocks = Vec::new();
        for i in 0..64usize {
            let l = std::alloc::Layout::from_size_align(16 + (i * 24) % 512, 8).unwrap();
            blocks.push((h.alloc(l).unwrap(), l));
        }
        for (p, l) in blocks {
            // SAFETY: blocks from this handle's allocator.
            unsafe { h.dealloc(p, l) };
        }
        let drain = ngm.telemetry().drain_trace();
        let conv = convert(&drain.events);
        assert_eq!(conv.unmatched_frees, 0);
        assert_eq!(conv.trailing_frees, 0);

        let mut heap = SegregatedHeap::new(7);
        let outcome = replay_heap(&mut heap, conv.events.iter().copied());
        assert_eq!(outcome.mallocs, 64);
        assert_eq!(outcome.frees, 64);
    }

    #[test]
    fn unmatched_frees_are_counted_not_replayed() {
        let trace = [
            ev(1, 0, TraceEventKind::Free, 64), // no matching alloc
            ev(2, 0, TraceEventKind::Alloc, 32),
            ev(3, 0, TraceEventKind::Free, 32),
        ];
        let conv = convert(&trace);
        assert_eq!(conv.unmatched_frees, 1);
        assert_eq!(conv.events.len(), 2);
    }

    #[test]
    fn leftover_live_blocks_get_trailing_frees() {
        let trace = [
            ev(1, 3, TraceEventKind::Alloc, 128),
            ev(2, 3, TraceEventKind::Alloc, 128),
            ev(3, 3, TraceEventKind::Free, 128),
        ];
        let conv = convert(&trace);
        assert_eq!(conv.trailing_frees, 1);
        let frees = conv
            .events
            .iter()
            .filter(|e| matches!(e, Event::Free { .. }))
            .count();
        assert_eq!(frees, 2, "matched free plus trailing free");
        let mut heap = SegregatedHeap::new(8);
        let outcome = replay_heap(&mut heap, conv.events.iter().copied());
        assert_eq!(outcome.frees, 2);
    }

    #[test]
    fn fifo_matching_is_per_thread_and_size() {
        let trace = [
            ev(1, 0, TraceEventKind::Alloc, 64),
            ev(2, 1, TraceEventKind::Alloc, 64),
            ev(3, 1, TraceEventKind::Free, 64), // matches thread 1's alloc
            ev(4, 0, TraceEventKind::Free, 64), // matches thread 0's alloc
        ];
        let conv = convert(&trace);
        assert_eq!(conv.unmatched_frees, 0);
        assert_eq!(conv.trailing_frees, 0);
        // Frees carry the allocating thread's id assignment.
        let ids: Vec<(u8, u64)> = conv
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Free { thread, id } => Some((*thread, *id)),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![(1, 1), (0, 0)]);
    }

    #[test]
    fn transport_events_are_skipped() {
        let trace = [
            ev(1, 0, TraceEventKind::Post, 5),
            ev(2, 0, TraceEventKind::Refill, 3),
            ev(3, 0, TraceEventKind::WaitTransition, 1),
            ev(4, 0, TraceEventKind::Span, 0xabc),
        ];
        let conv = convert(&trace);
        assert!(conv.events.is_empty());
        assert_eq!(conv.unmatched_frees, 0);
    }
}
