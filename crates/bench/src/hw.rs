//! The simulator-to-silicon bridge: runs replay kernels under a
//! [`PmuSession`] so every Table 1/2 column can be printed twice — once
//! from the cache/TLB simulator, once from the host machine's PMU while
//! it executes the very same replay.
//!
//! When `perf_event_open` is unavailable (permissions, seccomp, PMU-less
//! VM), the measured column degrades to the software backend *fed with
//! the simulator's own counters*, so the table keeps its full shape and
//! the `/sw` column label says exactly where the numbers came from.

use ngm_pmu::{BackendKind, PmuEvent, PmuReading, PmuSession};
use ngm_sim::PmuCounters;

/// Feeds the six Table 1 events from simulated counters into a session's
/// software backend (no-op on hardware sessions).
pub fn feed_sim(session: &mut PmuSession, c: &PmuCounters) {
    session.feed(PmuEvent::Cycles, c.cycles);
    session.feed(PmuEvent::Instructions, c.instructions);
    session.feed(PmuEvent::LlcLoadMisses, c.llc_load_misses);
    session.feed(PmuEvent::LlcStoreMisses, c.llc_store_misses);
    session.feed(PmuEvent::DtlbLoadMisses, c.dtlb_load_misses);
    session.feed(PmuEvent::DtlbStoreMisses, c.dtlb_store_misses);
}

/// A [`PmuReading`] that mirrors simulated counters (always the software
/// backend) — the `sim` column of a side-by-side table.
#[must_use]
pub fn sim_reading(c: &PmuCounters) -> PmuReading {
    let mut s = PmuSession::software();
    feed_sim(&mut s, c);
    s.begin();
    s.finish()
}

/// Runs `replay` with host PMU counters armed and returns its result plus
/// the measurement. On hardware, the reading is what the silicon counted
/// while the replay executed; on the software fallback, the reading is
/// fed from the replay's own simulated counters (via `counters`) so it
/// still has the full Table 1 shape — labeled `sw`, never masquerading
/// as hardware.
pub fn measure_replay<T>(
    replay: impl FnOnce() -> T,
    counters: impl FnOnce(&T) -> PmuCounters,
) -> (T, PmuReading) {
    let mut session = PmuSession::new();
    session.begin();
    let result = replay();
    if session.backend_kind() == BackendKind::Software {
        feed_sim(&mut session, &counters(&result));
    }
    let reading = session.finish();
    (result, reading)
}

/// One sim-vs-measured MPKI comparison cell.
#[derive(Debug, Clone)]
pub struct MpkiDelta {
    /// Column label (allocator or thread count).
    pub col: String,
    /// The miss event compared.
    pub event: PmuEvent,
    /// Simulated MPKI.
    pub sim: f64,
    /// Measured MPKI (hardware, or sim-fed software fallback).
    pub measured: Option<f64>,
    /// Backend that produced `measured`.
    pub backend: BackendKind,
}

/// The four Table 1 miss events compared by [`mpki_deltas`].
pub const MISS_EVENTS: [PmuEvent; 4] = [
    PmuEvent::LlcLoadMisses,
    PmuEvent::LlcStoreMisses,
    PmuEvent::DtlbLoadMisses,
    PmuEvent::DtlbStoreMisses,
];

/// Pairs a simulated and a measured reading into per-event MPKI deltas.
#[must_use]
pub fn mpki_deltas(col: &str, sim: &PmuReading, measured: &PmuReading) -> Vec<MpkiDelta> {
    MISS_EVENTS
        .into_iter()
        .map(|event| MpkiDelta {
            col: col.to_string(),
            event,
            sim: sim.mpki(event).unwrap_or(0.0),
            measured: measured.mpki(event),
            backend: measured.backend,
        })
        .collect()
}

/// Renders deltas as one line per cell — the exact text CI records as
/// its sim-vs-hw artifact, so keep it machine-greppable:
/// `col event sim measured backend`.
#[must_use]
pub fn render_deltas(deltas: &[MpkiDelta]) -> String {
    let mut out = String::from("sim-vs-measured MPKI deltas (col event sim measured backend)\n");
    for d in deltas {
        match d.measured {
            Some(m) => out.push_str(&format!(
                "{} {} {:.3} {:.3} {}\n",
                d.col,
                d.event.name(),
                d.sim,
                m,
                d.backend.label()
            )),
            None => out.push_str(&format!(
                "{} {} {:.3} n/a {}\n",
                d.col,
                d.event.name(),
                d.sim,
                d.backend.label()
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> PmuCounters {
        PmuCounters {
            cycles: 10_000,
            instructions: 4_000,
            llc_load_misses: 8,
            llc_store_misses: 4,
            dtlb_load_misses: 2,
            dtlb_store_misses: 1,
            ..PmuCounters::default()
        }
    }

    #[test]
    fn sim_reading_mirrors_counters() {
        let r = sim_reading(&sample_counters());
        assert_eq!(r.backend, BackendKind::Software);
        assert_eq!(r.get(PmuEvent::Cycles), Some(10_000));
        assert_eq!(r.get(PmuEvent::DtlbStoreMisses), Some(1));
        assert!((r.mpki(PmuEvent::LlcLoadMisses).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn measure_replay_never_panics_and_labels_backend() {
        // Satellite: the hardware path must degrade, not panic, when
        // perf is unavailable (CI, seccomp, PMU-less VMs).
        let (result, reading) = measure_replay(sample_counters, |c| *c);
        assert_eq!(result.cycles, 10_000);
        match reading.backend {
            BackendKind::Software => {
                // Fallback fed the sim counters: full Table 1 shape.
                for e in PmuEvent::ALL {
                    assert!(reading.get(e).is_some(), "{} missing", e.name());
                }
                assert_eq!(reading.get(PmuEvent::Instructions), Some(4_000));
            }
            BackendKind::Hardware => {
                assert!(reading.time_enabled_ns > 0);
            }
        }
    }

    #[test]
    fn deltas_cover_all_miss_events() {
        let sim = sim_reading(&sample_counters());
        let deltas = mpki_deltas("PTMalloc2", &sim, &sim);
        assert_eq!(deltas.len(), 4);
        let txt = render_deltas(&deltas);
        assert!(txt.contains("PTMalloc2 LLC-load-misses 2.000 2.000 sw"));
        assert!(txt.contains("dTLB-store-misses"));
    }
}
