//! The heap as a tenant of the dedicated core.

use ngm_offload::{ClientHandle, OffloadRuntime, Service, StatsSnapshot};

use crate::heap::{GcStats, LocalGcHeap, NodeId};

/// Synchronous requests mutators make of the heap.
#[derive(Debug, Clone)]
pub enum GcRequest {
    /// Allocate a node (children + payload); responds with its id.
    ///
    /// The returned id is *unreachable* until the mutator publishes it —
    /// an asynchronous collection may reclaim it first. Use
    /// [`GcRequest::AllocLinked`] for anything that must survive.
    Alloc {
        /// Children of the new node (each must be live).
        children: Vec<NodeId>,
        /// Initial payload.
        payload: u64,
    },
    /// Allocate a node and atomically attach it under `parent.slot`.
    ///
    /// Because the service core serializes the heap (§3.1.3), allocation
    /// and publication are one indivisible step — no rooting window for
    /// a concurrent collection to exploit. This is the offloaded
    /// equivalent of "allocation result lives in a register root".
    AllocLinked {
        /// Node to attach the new node under.
        parent: NodeId,
        /// Child slot of `parent` to overwrite.
        slot: usize,
        /// Children of the new node (each must be live).
        children: Vec<NodeId>,
        /// Initial payload.
        payload: u64,
    },
    /// Read a node's payload.
    Read(NodeId),
    /// Write a node's payload.
    Write(NodeId, u64),
    /// Point `parent.slot` at `child`.
    SetEdge {
        /// Parent node.
        parent: NodeId,
        /// Child slot index.
        slot: usize,
        /// New child (`None` clears the slot).
        child: Option<NodeId>,
    },
    /// Register a root.
    AddRoot(NodeId),
    /// Unregister a root.
    RemoveRoot(NodeId),
    /// Force a synchronous collection (tests / barriers).
    CollectNow,
    /// Fetch collector statistics.
    Stats,
}

/// Responses paired with [`GcRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcResponse {
    /// New node id.
    Allocated(NodeId),
    /// Payload value.
    Value(u64),
    /// Acknowledgement.
    Done,
    /// Nodes reclaimed by the forced collection.
    Collected(u64),
    /// Collector statistics.
    Stats(GcStats),
}

/// The collector as an offloaded service.
///
/// Collection hints arrive asynchronously (fire-and-forget posts) and the
/// service also triggers itself by allocation count — the mutators never
/// run collector code (§3.3.2: "with different GC settings, the
/// performance of the program can be affected a lot"; here the setting is
/// *whose core pays*).
pub struct GcService {
    heap: LocalGcHeap,
    /// Allocations since the last collection.
    since_collect: u64,
    /// Self-trigger threshold (0 disables).
    auto_every: u64,
    /// Collections initiated by asynchronous hints.
    hinted_collections: u64,
}

impl GcService {
    /// Creates the service; `auto_every` allocations trigger a
    /// collection (0 disables self-triggering).
    pub fn new(auto_every: u64) -> Self {
        GcService {
            heap: LocalGcHeap::new(),
            since_collect: 0,
            auto_every,
            hinted_collections: 0,
        }
    }

    /// Collections initiated by posted hints.
    pub fn hinted_collections(&self) -> u64 {
        self.hinted_collections
    }

    /// The underlying heap (inspection after shutdown).
    pub fn heap(&self) -> &LocalGcHeap {
        &self.heap
    }

    fn maybe_auto_collect(&mut self) {
        self.since_collect += 1;
        if self.auto_every > 0 && self.since_collect >= self.auto_every {
            self.since_collect = 0;
            self.heap.collect();
        }
    }
}

impl Service for GcService {
    type Req = GcRequest;
    type Resp = GcResponse;
    /// A posted collection hint.
    type Post = ();

    fn call(&mut self, req: GcRequest) -> GcResponse {
        match req {
            GcRequest::Alloc { children, payload } => {
                self.maybe_auto_collect();
                GcResponse::Allocated(self.heap.alloc(&children, payload))
            }
            GcRequest::AllocLinked {
                parent,
                slot,
                children,
                payload,
            } => {
                // Collect *before* allocating so the fresh node cannot be
                // the victim; then allocate and publish indivisibly.
                self.maybe_auto_collect();
                let id = self.heap.alloc(&children, payload);
                self.heap.set_edge(parent, slot, Some(id));
                GcResponse::Allocated(id)
            }
            GcRequest::Read(id) => GcResponse::Value(self.heap.payload(id)),
            GcRequest::Write(id, v) => {
                self.heap.set_payload(id, v);
                GcResponse::Done
            }
            GcRequest::SetEdge {
                parent,
                slot,
                child,
            } => {
                self.heap.set_edge(parent, slot, child);
                GcResponse::Done
            }
            GcRequest::AddRoot(id) => {
                self.heap.add_root(id);
                GcResponse::Done
            }
            GcRequest::RemoveRoot(id) => {
                self.heap.remove_root(id);
                GcResponse::Done
            }
            GcRequest::CollectNow => GcResponse::Collected(self.heap.collect()),
            GcRequest::Stats => GcResponse::Stats(self.heap.stats()),
        }
    }

    fn post(&mut self, _hint: ()) {
        // An asynchronous collection request: runs here, on the service
        // core, while the posting mutator continues unimpeded.
        self.hinted_collections += 1;
        self.since_collect = 0;
        self.heap.collect();
    }
}

/// A running offloaded collector.
pub struct GcRuntime {
    rt: OffloadRuntime<GcService>,
}

impl GcRuntime {
    /// Starts the collector with a self-trigger threshold.
    pub fn start(auto_every: u64) -> Self {
        GcRuntime {
            rt: OffloadRuntime::start(GcService::new(auto_every)),
        }
    }

    /// Registers a mutator.
    pub fn handle(&self) -> GcHandle {
        GcHandle {
            client: self.rt.register_client(),
        }
    }

    /// Stops the collector; returns the service and runtime stats.
    pub fn shutdown(self) -> (GcService, StatsSnapshot) {
        self.rt.shutdown()
    }
}

/// A mutator's endpoint.
pub struct GcHandle {
    client: ClientHandle<GcService>,
}

impl GcHandle {
    /// Allocates a node.
    ///
    /// # Panics
    ///
    /// Panics if the service rejects the children (dead ids).
    pub fn alloc(&mut self, children: &[NodeId], payload: u64) -> NodeId {
        match self.client.call(GcRequest::Alloc {
            children: children.to_vec(),
            payload,
        }) {
            GcResponse::Allocated(id) => id,
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Allocates a node and atomically publishes it under `parent.slot`
    /// (safe against concurrent collection hints; see
    /// [`GcRequest::AllocLinked`]).
    ///
    /// # Panics
    ///
    /// Panics if the service rejects the request (dead parent/children).
    pub fn alloc_linked(
        &mut self,
        parent: NodeId,
        slot: usize,
        children: &[NodeId],
        payload: u64,
    ) -> NodeId {
        match self.client.call(GcRequest::AllocLinked {
            parent,
            slot,
            children: children.to_vec(),
            payload,
        }) {
            GcResponse::Allocated(id) => id,
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Reads a payload.
    pub fn read(&mut self, id: NodeId) -> u64 {
        match self.client.call(GcRequest::Read(id)) {
            GcResponse::Value(v) => v,
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Writes a payload.
    pub fn write(&mut self, id: NodeId, v: u64) {
        self.client.call(GcRequest::Write(id, v));
    }

    /// Rewrites an edge.
    pub fn set_edge(&mut self, parent: NodeId, slot: usize, child: Option<NodeId>) {
        self.client.call(GcRequest::SetEdge {
            parent,
            slot,
            child,
        });
    }

    /// Registers a root.
    pub fn add_root(&mut self, id: NodeId) {
        self.client.call(GcRequest::AddRoot(id));
    }

    /// Unregisters a root.
    pub fn remove_root(&mut self, id: NodeId) {
        self.client.call(GcRequest::RemoveRoot(id));
    }

    /// Posts an asynchronous collection hint and returns immediately —
    /// the mutator never pauses for the collector.
    pub fn hint_collect(&mut self) {
        self.client.post(());
    }

    /// Forces a synchronous collection (a barrier; tests use it).
    pub fn collect_now(&mut self) -> u64 {
        match self.client.call(GcRequest::CollectNow) {
            GcResponse::Collected(n) => n,
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Fetches collector statistics.
    pub fn stats(&mut self) -> GcStats {
        match self.client.call(GcRequest::Stats) {
            GcResponse::Stats(s) => s,
            other => unreachable!("protocol violation: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offloaded_alloc_and_collect() {
        let rt = GcRuntime::start(0);
        let mut m = rt.handle();
        let a = m.alloc(&[], 1);
        let b = m.alloc(&[a], 2);
        m.add_root(b);
        let _garbage = m.alloc(&[], 3);
        assert_eq!(m.collect_now(), 1);
        assert_eq!(m.read(a), 1);
        drop(m);
        let (svc, _) = rt.shutdown();
        assert_eq!(svc.heap().stats().collections, 1);
    }

    #[test]
    fn async_hint_collects_without_blocking_mutator() {
        let rt = GcRuntime::start(0);
        let mut m = rt.handle();
        let root = m.alloc(&[], 0);
        m.add_root(root);
        for _ in 0..100 {
            m.alloc(&[], 9); // garbage
        }
        m.hint_collect(); // returns immediately
                          // Barrier to observe the result deterministically.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let stats = loop {
            let s = m.stats();
            if s.collections >= 1 {
                break s;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "hinted collection never ran"
            );
            std::thread::yield_now();
        };
        assert!(stats.total_swept >= 100);
        drop(m);
        let (svc, _) = rt.shutdown();
        assert_eq!(svc.hinted_collections(), 1);
    }

    #[test]
    fn auto_trigger_bounds_heap_growth() {
        let rt = GcRuntime::start(64);
        let mut m = rt.handle();
        let root = m.alloc(&[], 0);
        m.add_root(root);
        for i in 0..1_000 {
            m.alloc(&[], i); // all garbage
        }
        let stats = m.stats();
        assert!(stats.collections >= 10, "auto-GC must have run");
        assert!(
            stats.live_upper_bound < 200,
            "heap stayed bounded: {stats:?}"
        );
    }

    #[test]
    fn alloc_linked_survives_interleaved_hints() {
        let rt = GcRuntime::start(0);
        let mut m = rt.handle();
        let root = m.alloc(&[], 0);
        m.add_root(root);
        let mut kept = root;
        for i in 0..500u64 {
            m.hint_collect(); // hostile: collect between every operation
            kept = m.alloc_linked(root, 0, &[kept], i);
        }
        assert_eq!(m.read(kept), 499, "published chain survives every hint");
    }

    #[test]
    fn multiple_mutators_share_the_graph() {
        let rt = GcRuntime::start(0);
        let mut a = rt.handle();
        let shared = a.alloc(&[], 42);
        a.add_root(shared);
        let mut joins = Vec::new();
        for t in 0..3u64 {
            let mut h = rt.handle();
            joins.push(std::thread::spawn(move || {
                let mine = h.alloc(&[shared], t);
                h.add_root(mine);
                let v = h.read(shared);
                h.remove_root(mine);
                v
            }));
        }
        for j in joins {
            assert_eq!(j.join().expect("mutator"), 42);
        }
        a.collect_now();
        assert_eq!(a.read(shared), 42, "shared node survives");
    }
}
