//! Offloaded garbage collection — §3.3.2's "research opportunities for
//! using NextGen-Malloc to process garbage collection" made concrete.
//!
//! The same property that lets malloc move into its own room applies to
//! a tracing collector: mark/sweep metadata (mark bits, free lists, the
//! work list) is exactly the kind of bookkeeping that pollutes mutator
//! caches, and a single service core serializes the heap so the collector
//! needs no synchronization with itself. This crate runs a mark-sweep
//! heap of object-graph nodes as a [`ngm_offload::Service`]:
//!
//! * Mutators allocate nodes and rewrite edges through per-thread
//!   handles (synchronous calls — like `malloc`).
//! * Collection is **asynchronous**: any mutator may post a collection
//!   hint; the service traces from the root set and sweeps while
//!   mutators keep computing, paying at most an allocation stall if they
//!   call in mid-collection (the service serializes requests), never a
//!   stop-the-world pause.
//! * The baseline for comparison is [`heap::LocalGcHeap`]: the same heap
//!   embedded in the mutator, collecting inline — a classic
//!   stop-the-mutator design.
//!
//! The unit of storage is a fixed-degree graph [`heap::Node`] rather than
//! arbitrary `T`: the reproduction needs the *memory-system shape* of
//! tracing (pointer chasing over a heap, mark-bit writes), not a full
//! managed-language object model.

#![warn(missing_docs)]

pub mod heap;
pub mod service;

pub use heap::{GcStats, LocalGcHeap, NodeId};
pub use service::{GcHandle, GcRequest, GcResponse, GcRuntime, GcService};
