//! The mark-sweep heap of graph nodes, single-owner by construction.

/// Maximum out-edges per node (fixed degree keeps nodes cache-line
/// sized, like a cons-heavy managed heap).
pub const MAX_CHILDREN: usize = 4;

/// A handle to a heap node.
///
/// Indices are stable for a node's lifetime and may be reused after the
/// node is collected (like addresses). Mutators must not retain ids of
/// unreachable nodes — exactly a managed language's reachability
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    children: [u32; MAX_CHILDREN],
    /// Payload words (the "object body" mutators read/write).
    payload: u64,
    marked: bool,
    live: bool,
}

const DEAD: Node = Node {
    children: [NONE; MAX_CHILDREN],
    payload: 0,
    marked: false,
    live: false,
};

/// Collector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes ever allocated.
    pub allocated: u64,
    /// Collections run.
    pub collections: u64,
    /// Nodes marked live across all collections.
    pub total_marked: u64,
    /// Nodes reclaimed across all collections.
    pub total_swept: u64,
    /// Current live node count (exact after a collection; an upper bound
    /// between collections).
    pub live_upper_bound: u64,
}

/// A single-owner mark-sweep heap.
///
/// No synchronization anywhere: §3.1.3's argument verbatim. Shared use
/// happens by giving the whole heap to the service core (see
/// [`crate::service`]), or by embedding it in a single mutator as the
/// stop-the-world baseline.
#[derive(Debug)]
pub struct LocalGcHeap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    roots: Vec<u32>,
    stats: GcStats,
    /// Reusable mark stack (kept across collections to avoid churn).
    work: Vec<u32>,
}

impl LocalGcHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        LocalGcHeap {
            nodes: Vec::new(),
            free: Vec::new(),
            roots: Vec::new(),
            stats: GcStats::default(),
            work: Vec::new(),
        }
    }

    /// Allocates a node with the given children and payload.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CHILDREN`] children are supplied or a
    /// child id is dead.
    pub fn alloc(&mut self, children: &[NodeId], payload: u64) -> NodeId {
        assert!(children.len() <= MAX_CHILDREN, "too many children");
        let mut arr = [NONE; MAX_CHILDREN];
        for (slot, c) in arr.iter_mut().zip(children) {
            assert!(self.is_live(*c), "child {c:?} is dead");
            *slot = c.0;
        }
        let node = Node {
            children: arr,
            payload,
            marked: false,
            live: true,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        self.stats.allocated += 1;
        self.stats.live_upper_bound += 1;
        NodeId(idx)
    }

    /// Returns whether `id` refers to a live node.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.0 as usize)
            .map(|n| n.live)
            .unwrap_or(false)
    }

    /// Reads a node's payload.
    ///
    /// # Panics
    ///
    /// Panics if the node is dead.
    pub fn payload(&self, id: NodeId) -> u64 {
        let n = &self.nodes[id.0 as usize];
        assert!(n.live, "read of dead node");
        n.payload
    }

    /// Writes a node's payload.
    ///
    /// # Panics
    ///
    /// Panics if the node is dead.
    pub fn set_payload(&mut self, id: NodeId, payload: u64) {
        let n = &mut self.nodes[id.0 as usize];
        assert!(n.live, "write of dead node");
        n.payload = payload;
    }

    /// Points `parent`'s `slot` at `child` (or clears it with `None`).
    ///
    /// # Panics
    ///
    /// Panics on dead nodes or an out-of-range slot.
    pub fn set_edge(&mut self, parent: NodeId, slot: usize, child: Option<NodeId>) {
        assert!(slot < MAX_CHILDREN, "slot out of range");
        if let Some(c) = child {
            assert!(self.is_live(c), "edge to dead node");
        }
        let n = &mut self.nodes[parent.0 as usize];
        assert!(n.live, "edge from dead node");
        n.children[slot] = child.map(|c| c.0).unwrap_or(NONE);
    }

    /// Reads `parent`'s `slot`.
    pub fn edge(&self, parent: NodeId, slot: usize) -> Option<NodeId> {
        let n = &self.nodes[parent.0 as usize];
        assert!(n.live, "edge read from dead node");
        let c = n.children[slot];
        (c != NONE).then_some(NodeId(c))
    }

    /// Registers `id` as a root.
    pub fn add_root(&mut self, id: NodeId) {
        assert!(self.is_live(id), "root must be live");
        self.roots.push(id.0);
    }

    /// Unregisters one occurrence of `id` from the root set.
    pub fn remove_root(&mut self, id: NodeId) {
        if let Some(pos) = self.roots.iter().position(|&r| r == id.0) {
            self.roots.swap_remove(pos);
        }
    }

    /// Runs a full mark-sweep collection; returns how many nodes were
    /// reclaimed.
    pub fn collect(&mut self) -> u64 {
        // Mark.
        self.work.clear();
        self.work.extend_from_slice(&self.roots);
        let mut marked = 0u64;
        while let Some(i) = self.work.pop() {
            let n = &mut self.nodes[i as usize];
            if !n.live || n.marked {
                continue;
            }
            n.marked = true;
            marked += 1;
            let children = n.children;
            for c in children {
                if c != NONE {
                    self.work.push(c);
                }
            }
        }
        // Sweep.
        let mut swept = 0u64;
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if n.live {
                if n.marked {
                    n.marked = false;
                } else {
                    *n = DEAD;
                    self.free.push(i as u32);
                    swept += 1;
                }
            }
        }
        self.stats.collections += 1;
        self.stats.total_marked += marked;
        self.stats.total_swept += swept;
        self.stats.live_upper_bound = marked;
        swept
    }

    /// Collector statistics.
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Number of registered roots.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Current heap slots (live + free), a capacity proxy.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }
}

impl Default for LocalGcHeap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_nodes_are_collected() {
        let mut h = LocalGcHeap::new();
        let a = h.alloc(&[], 1);
        let b = h.alloc(&[a], 2);
        let _garbage = h.alloc(&[], 3);
        h.add_root(b);
        let swept = h.collect();
        assert_eq!(swept, 1, "only the unrooted node dies");
        assert!(h.is_live(a), "reachable through b");
        assert!(h.is_live(b));
    }

    #[test]
    fn cycles_are_collected_when_unrooted() {
        let mut h = LocalGcHeap::new();
        let a = h.alloc(&[], 1);
        let b = h.alloc(&[a], 2);
        h.set_edge(a, 0, Some(b)); // a <-> b cycle
        h.add_root(a);
        assert_eq!(h.collect(), 0, "rooted cycle survives");
        h.remove_root(a);
        assert_eq!(h.collect(), 2, "unrooted cycle dies whole");
    }

    #[test]
    fn slots_are_reused_after_sweep() {
        let mut h = LocalGcHeap::new();
        let a = h.alloc(&[], 7);
        h.collect(); // a is unrooted garbage
        assert!(!h.is_live(a));
        let b = h.alloc(&[], 8);
        assert_eq!(a.0, b.0, "slot recycled");
        assert_eq!(h.capacity(), 1);
    }

    #[test]
    fn edge_rewrites_change_reachability() {
        let mut h = LocalGcHeap::new();
        let leaf1 = h.alloc(&[], 1);
        let leaf2 = h.alloc(&[], 2);
        let root = h.alloc(&[leaf1], 0);
        h.add_root(root);
        h.set_edge(root, 0, Some(leaf2));
        let swept = h.collect();
        assert_eq!(swept, 1);
        assert!(!h.is_live(leaf1), "disconnected");
        assert!(h.is_live(leaf2));
    }

    #[test]
    fn stats_track_totals() {
        let mut h = LocalGcHeap::new();
        for _ in 0..10 {
            h.alloc(&[], 0);
        }
        h.collect();
        let s = h.stats();
        assert_eq!(s.allocated, 10);
        assert_eq!(s.total_swept, 10);
        assert_eq!(s.live_upper_bound, 0);
        assert_eq!(s.collections, 1);
    }

    #[test]
    #[should_panic(expected = "dead")]
    fn using_collected_node_panics() {
        let mut h = LocalGcHeap::new();
        let a = h.alloc(&[], 1);
        h.collect();
        h.payload(a);
    }

    #[test]
    fn deep_chain_marks_iteratively() {
        // A long chain must not recurse (explicit work list).
        let mut h = LocalGcHeap::new();
        let mut cur = h.alloc(&[], 0);
        for i in 1..100_000u64 {
            cur = h.alloc(&[cur], i);
        }
        h.add_root(cur);
        assert_eq!(h.collect(), 0);
        assert_eq!(h.stats().live_upper_bound, 100_000);
    }
}
