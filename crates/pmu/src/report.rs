//! Table 1/2-shaped rendering of PMU readings.
//!
//! A [`PmuReport`] is a set of labeled columns (one per allocator, thread
//! count, or core role) over the six-event row set of the paper's
//! Table 1. Every column header carries its backend label (`/hw` or
//! `/sw`), so a report mixing hardware counters with software fallbacks
//! stays honest about which is which.

use ngm_telemetry::export::MetricsSnapshot;

use crate::events::PmuEvent;
use crate::session::PmuReading;

/// One labeled column of readings.
#[derive(Debug, Clone)]
pub struct PmuColumn {
    /// Column name (allocator, thread count, core role, …).
    pub name: String,
    /// The measurement.
    pub reading: PmuReading,
}

/// A renderable, exportable set of PMU readings.
#[derive(Debug, Clone)]
pub struct PmuReport {
    /// Report heading.
    pub title: String,
    /// Columns in insertion order.
    pub cols: Vec<PmuColumn>,
}

impl PmuReport {
    /// An empty report.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        PmuReport {
            title: title.into(),
            cols: Vec::new(),
        }
    }

    /// Appends a column.
    pub fn push(&mut self, name: impl Into<String>, reading: PmuReading) -> &mut Self {
        self.cols.push(PmuColumn {
            name: name.into(),
            reading,
        });
        self
    }

    /// The MPKI row set of Table 1 (miss events only).
    const MPKI_EVENTS: [PmuEvent; 4] = [
        PmuEvent::LlcLoadMisses,
        PmuEvent::LlcStoreMisses,
        PmuEvent::DtlbLoadMisses,
        PmuEvent::DtlbStoreMisses,
    ];

    /// Renders the report: absolute counts, MPKI rows, and a footnote for
    /// multiplexed or partially-unavailable columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut header = vec!["metric".to_string()];
        header.extend(
            self.cols
                .iter()
                .map(|c| format!("{}/{}", c.name, c.reading.backend.label())),
        );
        let mut rows: Vec<Vec<String>> = Vec::new();
        for e in PmuEvent::ALL {
            let mut row = vec![e.name().to_string()];
            row.extend(self.cols.iter().map(|c| match c.reading.get(e) {
                Some(v) => v.to_string(),
                None => "n/a".to_string(),
            }));
            rows.push(row);
        }
        for e in Self::MPKI_EVENTS {
            let mut row = vec![format!("{}-MPKI", mpki_stem(e))];
            row.extend(self.cols.iter().map(|c| match c.reading.mpki(e) {
                Some(v) => format!("{v:.3}"),
                None => "n/a".to_string(),
            }));
            rows.push(row);
        }
        let mut out = format!("{}\n{}", self.title, align(&header, &rows));
        for c in &self.cols {
            if c.reading.multiplexed() {
                out.push_str(&format!(
                    "note: {} was multiplexed ({} of {} ns on the PMU); counts are scaled estimates\n",
                    c.name, c.reading.time_running_ns, c.reading.time_enabled_ns
                ));
            }
        }
        out
    }

    /// Publishes every count as labeled gauges
    /// (`ngm_pmu_count{source,event,backend}`) through the telemetry
    /// exporter.
    pub fn publish(&self, m: &mut MetricsSnapshot) {
        for c in &self.cols {
            for e in PmuEvent::ALL {
                if let Some(v) = c.reading.get(e) {
                    m.labeled_gauge(
                        "ngm_pmu_count",
                        &[
                            ("source", c.name.as_str()),
                            ("event", e.name()),
                            ("backend", c.reading.backend.label()),
                        ],
                        v as i64,
                    );
                }
            }
        }
    }
}

/// The paper spells MPKI rows with the `-misses` suffix dropped
/// (`dTLB-load-MPKI`).
fn mpki_stem(e: PmuEvent) -> &'static str {
    match e {
        PmuEvent::LlcLoadMisses => "LLC-load",
        PmuEvent::LlcStoreMisses => "LLC-store",
        PmuEvent::DtlbLoadMisses => "dTLB-load",
        PmuEvent::DtlbStoreMisses => "dTLB-store",
        PmuEvent::Cycles | PmuEvent::Instructions => "",
    }
}

/// Right-aligns data columns under their headers (first column left).
fn align(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}", c, w = widths[0]));
            } else {
                line.push_str(&format!("  {:>w$}", c, w = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    let mut out = fmt_row(header);
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{BackendKind, PmuSession};

    fn fed_reading() -> PmuReading {
        let mut s = PmuSession::software();
        s.feed(PmuEvent::Instructions, 10_000);
        s.feed(PmuEvent::LlcLoadMisses, 25);
        s.feed(PmuEvent::DtlbStoreMisses, 5);
        s.start().stop()
    }

    #[test]
    fn forced_software_report_has_full_table1_shape() {
        // Satellite: a forced-SoftwareCounters session must produce a
        // complete Table 1-shaped report.
        let mut rep = PmuReport::new("Table 1 (software fallback)");
        rep.push("PTMalloc2", fed_reading());
        let s = rep.render();
        for e in PmuEvent::ALL {
            assert!(s.contains(e.name()), "row {} missing:\n{s}", e.name());
        }
        for stem in [
            "LLC-load-MPKI",
            "LLC-store-MPKI",
            "dTLB-load-MPKI",
            "dTLB-store-MPKI",
        ] {
            assert!(s.contains(stem), "row {stem} missing:\n{s}");
        }
        assert!(s.contains("PTMalloc2/sw"), "backend label missing:\n{s}");
        assert!(!s.contains("n/a"), "software reading is complete:\n{s}");
        assert!(s.contains("2.500"), "LLC-load MPKI = 25 * 1000 / 10000");
    }

    #[test]
    fn unmeasurable_events_render_na() {
        let mut r = PmuReading::empty_software();
        r.counts[PmuEvent::LlcStoreMisses.index()] = None;
        let mut rep = PmuReport::new("t");
        rep.push("x", r);
        assert!(rep.render().contains("n/a"));
    }

    #[test]
    fn multiplexed_column_gets_footnote() {
        let r = PmuReading {
            backend: BackendKind::Hardware,
            counts: [Some(1); 6],
            time_enabled_ns: 100,
            time_running_ns: 40,
        };
        let mut rep = PmuReport::new("t");
        rep.push("x", r);
        let s = rep.render();
        assert!(s.contains("multiplexed"));
        assert!(s.contains("x/hw"));
    }

    #[test]
    fn publish_roundtrips_through_exporter() {
        let mut rep = PmuReport::new("t");
        rep.push("service", fed_reading());
        let mut m = MetricsSnapshot::new();
        rep.publish(&mut m);
        let text = m.to_prometheus_text();
        assert!(
            text.contains(
                "ngm_pmu_count{source=\"service\",event=\"instructions\",backend=\"sw\"} 10000"
            ),
            "labeled series missing:\n{text}"
        );
    }
}
