//! The counter set the paper's Tables 1 and 2 are built from.

/// Generic hardware event: CPU cycles (`PERF_TYPE_HARDWARE`).
const PERF_TYPE_HARDWARE: u32 = 0;
/// Cache event namespace (`PERF_TYPE_HW_CACHE`).
const PERF_TYPE_HW_CACHE: u32 = 3;

const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;

/// Last-level cache, in the `PERF_COUNT_HW_CACHE_*` id space.
const PERF_COUNT_HW_CACHE_LL: u64 = 2;
/// First-level data TLB.
const PERF_COUNT_HW_CACHE_DTLB: u64 = 3;
const PERF_COUNT_HW_CACHE_OP_READ: u64 = 0;
const PERF_COUNT_HW_CACHE_OP_WRITE: u64 = 1;
const PERF_COUNT_HW_CACHE_RESULT_MISS: u64 = 1;

/// Builds a `PERF_TYPE_HW_CACHE` config word: `id | (op << 8) |
/// (result << 16)` per `perf_event_open(2)`.
const fn cache_config(id: u64, op: u64, result: u64) -> u64 {
    id | (op << 8) | (result << 16)
}

/// The six events behind the paper's Table 1 columns (Table 2 uses the
/// first four). Order is the table's row order and the order counters are
/// attached to a perf group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmuEvent {
    /// `cycles` row — `PERF_COUNT_HW_CPU_CYCLES`.
    Cycles,
    /// `instructions` row (the MPKI denominator) —
    /// `PERF_COUNT_HW_INSTRUCTIONS`.
    Instructions,
    /// `LLC-load-misses` row — LL cache, read op, miss result.
    LlcLoadMisses,
    /// `LLC-store-misses` row — LL cache, write op, miss result.
    LlcStoreMisses,
    /// `dTLB-load-misses` row — dTLB, read op, miss result.
    DtlbLoadMisses,
    /// `dTLB-store-misses` row — dTLB, write op, miss result.
    DtlbStoreMisses,
}

impl PmuEvent {
    /// Every event, in Table 1 row order.
    pub const ALL: [PmuEvent; 6] = [
        PmuEvent::Cycles,
        PmuEvent::Instructions,
        PmuEvent::LlcLoadMisses,
        PmuEvent::LlcStoreMisses,
        PmuEvent::DtlbLoadMisses,
        PmuEvent::DtlbStoreMisses,
    ];

    /// The `perf_event_attr.type` for this event.
    #[must_use]
    pub fn perf_type(self) -> u32 {
        match self {
            PmuEvent::Cycles | PmuEvent::Instructions => PERF_TYPE_HARDWARE,
            _ => PERF_TYPE_HW_CACHE,
        }
    }

    /// The `perf_event_attr.config` for this event.
    #[must_use]
    pub fn perf_config(self) -> u64 {
        match self {
            PmuEvent::Cycles => PERF_COUNT_HW_CPU_CYCLES,
            PmuEvent::Instructions => PERF_COUNT_HW_INSTRUCTIONS,
            PmuEvent::LlcLoadMisses => cache_config(
                PERF_COUNT_HW_CACHE_LL,
                PERF_COUNT_HW_CACHE_OP_READ,
                PERF_COUNT_HW_CACHE_RESULT_MISS,
            ),
            PmuEvent::LlcStoreMisses => cache_config(
                PERF_COUNT_HW_CACHE_LL,
                PERF_COUNT_HW_CACHE_OP_WRITE,
                PERF_COUNT_HW_CACHE_RESULT_MISS,
            ),
            PmuEvent::DtlbLoadMisses => cache_config(
                PERF_COUNT_HW_CACHE_DTLB,
                PERF_COUNT_HW_CACHE_OP_READ,
                PERF_COUNT_HW_CACHE_RESULT_MISS,
            ),
            PmuEvent::DtlbStoreMisses => cache_config(
                PERF_COUNT_HW_CACHE_DTLB,
                PERF_COUNT_HW_CACHE_OP_WRITE,
                PERF_COUNT_HW_CACHE_RESULT_MISS,
            ),
        }
    }

    /// The paper's row label for this event (matches `perf stat -e`
    /// spelling, which Table 1 reuses).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PmuEvent::Cycles => "cycles",
            PmuEvent::Instructions => "instructions",
            PmuEvent::LlcLoadMisses => "LLC-load-misses",
            PmuEvent::LlcStoreMisses => "LLC-store-misses",
            PmuEvent::DtlbLoadMisses => "dTLB-load-misses",
            PmuEvent::DtlbStoreMisses => "dTLB-store-misses",
        }
    }

    /// This event's index in [`PmuEvent::ALL`] (and in every
    /// [`crate::PmuReading`]'s count array).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_in_declaration_order() {
        for (i, e) in PmuEvent::ALL.into_iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn cache_configs_match_perf_event_h() {
        // Values cross-checked against linux/perf_event.h:
        // LL read miss = 2 | (0<<8) | (1<<16); dTLB write miss =
        // 3 | (1<<8) | (1<<16).
        assert_eq!(PmuEvent::LlcLoadMisses.perf_config(), 0x1_00_02);
        assert_eq!(PmuEvent::LlcStoreMisses.perf_config(), 0x1_01_02);
        assert_eq!(PmuEvent::DtlbLoadMisses.perf_config(), 0x1_00_03);
        assert_eq!(PmuEvent::DtlbStoreMisses.perf_config(), 0x1_01_03);
        assert_eq!(PmuEvent::Cycles.perf_config(), 0);
        assert_eq!(PmuEvent::Instructions.perf_config(), 1);
    }

    #[test]
    fn hardware_events_use_hardware_type() {
        assert_eq!(PmuEvent::Cycles.perf_type(), 0);
        assert_eq!(PmuEvent::Instructions.perf_type(), 0);
        assert_eq!(PmuEvent::DtlbStoreMisses.perf_type(), 3);
    }

    #[test]
    fn names_match_perf_stat_spelling() {
        assert_eq!(PmuEvent::LlcLoadMisses.name(), "LLC-load-misses");
        assert_eq!(PmuEvent::DtlbStoreMisses.name(), "dTLB-store-misses");
    }
}
