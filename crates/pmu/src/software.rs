//! The degradation backend: software "counters" for machines where
//! `perf_event_open` is unavailable.
//!
//! Cycles are genuinely measured (TSC delta via
//! [`ngm_telemetry::clock`]); every other event reports whatever the
//! caller [fed](SoftwareCounters::feed) — the repro harness feeds the
//! cache/TLB simulator's counters, labeled as such, so a fallback report
//! still has the full Table 1 shape.

use crate::events::PmuEvent;
use crate::session::{BackendKind, PmuReading};

/// Fed counter values plus a TSC-derived cycles measurement.
#[derive(Debug, Default)]
pub struct SoftwareCounters {
    fed: [u64; 6],
    start_cycles: u64,
    start_ns: u64,
}

impl SoftwareCounters {
    /// A zeroed backend.
    #[must_use]
    pub fn new() -> Self {
        SoftwareCounters::default()
    }

    /// Sets the value reported for `event`. Feeding
    /// [`PmuEvent::Cycles`] overrides the TSC measurement.
    pub fn feed(&mut self, event: PmuEvent, value: u64) {
        self.fed[event.index()] = value;
    }

    /// Marks the interval start.
    pub fn start(&mut self, cycles_now: u64, now_ns: u64) {
        self.start_cycles = cycles_now;
        self.start_ns = now_ns;
    }

    /// Ends the interval and assembles the reading.
    pub fn stop(&mut self, cycles_now: u64, now_ns: u64) -> PmuReading {
        let elapsed_cycles = cycles_now.saturating_sub(self.start_cycles);
        let elapsed_ns = now_ns.saturating_sub(self.start_ns);
        let mut counts = [None; 6];
        for e in PmuEvent::ALL {
            counts[e.index()] = Some(self.fed[e.index()]);
        }
        if self.fed[PmuEvent::Cycles.index()] == 0 {
            counts[PmuEvent::Cycles.index()] = Some(elapsed_cycles);
        }
        PmuReading {
            backend: BackendKind::Software,
            counts,
            time_enabled_ns: elapsed_ns,
            time_running_ns: elapsed_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_cycles_used_unless_fed() {
        let mut sw = SoftwareCounters::new();
        sw.start(1_000, 10);
        let r = sw.stop(1_500, 30);
        assert_eq!(r.get(PmuEvent::Cycles), Some(500));
        assert_eq!(r.time_enabled_ns, 20);
        assert!(!r.multiplexed(), "software backend never multiplexes");

        sw.feed(PmuEvent::Cycles, 42);
        sw.start(2_000, 40);
        let r = sw.stop(9_000, 90);
        assert_eq!(r.get(PmuEvent::Cycles), Some(42), "fed value wins");
    }

    #[test]
    fn unfed_events_report_zero_not_absent() {
        let mut sw = SoftwareCounters::new();
        sw.start(0, 0);
        let r = sw.stop(1, 1);
        assert_eq!(r.get(PmuEvent::DtlbStoreMisses), Some(0));
    }
}
