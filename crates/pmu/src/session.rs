//! Scoped measurement sessions over either backend.

use ngm_telemetry::clock;

use crate::events::PmuEvent;
use crate::perf::{PerfGroup, PmuError};
use crate::software::SoftwareCounters;

/// Which machinery produced a reading. Every report row is labeled with
/// this, so software-fallback numbers can never masquerade as hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Real PMU counters via `perf_event_open(2)`.
    Hardware,
    /// The [`SoftwareCounters`] fallback: TSC-derived cycles plus
    /// whatever counters the caller feeds (the cache/TLB simulator in the
    /// repro harness).
    Software,
}

impl BackendKind {
    /// Short label used in report column headers (`hw` / `sw`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Hardware => "hw",
            BackendKind::Software => "sw",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Hardware => write!(f, "hardware"),
            BackendKind::Software => write!(f, "software"),
        }
    }
}

/// One finished measurement: scaled counts per event plus enough
/// bookkeeping to judge their quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuReading {
    /// Which backend produced these numbers.
    pub backend: BackendKind,
    /// Scaled counts indexed by [`PmuEvent::index`]; `None` when the
    /// event could not be counted on this machine.
    pub counts: [Option<u64>; 6],
    /// Nanoseconds the group was scheduled (hardware) or measured
    /// (software; TSC-derived, approximate).
    pub time_enabled_ns: u64,
    /// Nanoseconds the group was actually counting.
    pub time_running_ns: u64,
}

impl PmuReading {
    /// An empty software reading (all counters present but zero).
    #[must_use]
    pub fn empty_software() -> Self {
        PmuReading {
            backend: BackendKind::Software,
            counts: [Some(0); 6],
            time_enabled_ns: 0,
            time_running_ns: 0,
        }
    }

    /// The scaled count for `event`, if it was measurable.
    #[must_use]
    pub fn get(&self, event: PmuEvent) -> Option<u64> {
        self.counts[event.index()]
    }

    /// Whether the kernel time-multiplexed this group (counts were scaled
    /// up by `time_enabled / time_running` and are estimates).
    #[must_use]
    pub fn multiplexed(&self) -> bool {
        self.time_running_ns > 0 && self.time_running_ns < self.time_enabled_ns
    }

    /// Misses per kilo-instruction for `event`, when both it and the
    /// instruction count were measured.
    #[must_use]
    pub fn mpki(&self, event: PmuEvent) -> Option<f64> {
        let instr = self.get(PmuEvent::Instructions)?;
        if instr == 0 {
            return None;
        }
        Some(self.get(event)? as f64 * 1000.0 / instr as f64)
    }

    /// Element-wise sum (unmeasurable events stay unmeasurable; the
    /// merged reading is hardware only if both inputs were).
    #[must_use]
    pub fn merge(&self, other: &PmuReading) -> PmuReading {
        let mut counts = [None; 6];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = match (self.counts[i], other.counts[i]) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        PmuReading {
            backend: if self.backend == other.backend {
                self.backend
            } else {
                BackendKind::Software
            },
            counts,
            time_enabled_ns: self.time_enabled_ns + other.time_enabled_ns,
            time_running_ns: self.time_running_ns + other.time_running_ns,
        }
    }
}

enum BackendImpl {
    Hw(PerfGroup),
    Sw(SoftwareCounters),
}

/// A reusable measurement session: `start` → work → `stop` → reading.
///
/// Construction picks the backend once; each `start`/`stop` cycle resets
/// and re-reads the counters. The session must stay on the thread whose
/// work it attributes — perf counters opened here count *this* thread.
pub struct PmuSession {
    backend: BackendImpl,
}

impl std::fmt::Debug for PmuSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmuSession")
            .field("backend", &self.backend_kind())
            .finish()
    }
}

impl PmuSession {
    /// Opens a hardware session, falling back to software when
    /// `perf_event_open` is unavailable (EPERM, ENOSYS, PMU-less VM, …).
    /// Every caller works everywhere; check
    /// [`PmuSession::backend_kind`] / the reading's label for which
    /// numbers you got.
    #[must_use]
    pub fn new() -> Self {
        match Self::hardware() {
            Ok(s) => s,
            Err(_) => Self::software(),
        }
    }

    /// Opens a hardware-only session.
    ///
    /// # Errors
    ///
    /// The [`PmuError`] explaining why the PMU is unreachable.
    pub fn hardware() -> Result<Self, PmuError> {
        PerfGroup::open(&PmuEvent::ALL).map(|g| PmuSession {
            backend: BackendImpl::Hw(g),
        })
    }

    /// Opens a software session (used directly in tests and by the repro
    /// harness when it wants the sim-fed backend explicitly).
    #[must_use]
    pub fn software() -> Self {
        PmuSession {
            backend: BackendImpl::Sw(SoftwareCounters::new()),
        }
    }

    /// Which backend this session measures with.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        match &self.backend {
            BackendImpl::Hw(_) => BackendKind::Hardware,
            BackendImpl::Sw(_) => BackendKind::Software,
        }
    }

    /// Events this session cannot measure (hardware sessions on machines
    /// whose PMU lacks some events; empty for software sessions, which
    /// report every event).
    #[must_use]
    pub fn unavailable_events(&self) -> &[PmuEvent] {
        match &self.backend {
            BackendImpl::Hw(g) => g.unavailable_events(),
            BackendImpl::Sw(_) => &[],
        }
    }

    /// Feeds a software counter (no-op on hardware sessions). The repro
    /// harness feeds the cache/TLB simulator's counters here so a
    /// fallback reading still has the full Table 1 shape.
    pub fn feed(&mut self, event: PmuEvent, value: u64) {
        if let BackendImpl::Sw(sw) = &mut self.backend {
            sw.feed(event, value);
        }
    }

    /// Starts counting; the returned guard stops it.
    pub fn start(&mut self) -> RunningSession<'_> {
        self.begin();
        RunningSession { session: self }
    }

    /// Starts counting without a guard — for sessions embedded in
    /// long-lived structs (e.g. a client handle measuring its whole
    /// lifetime) where a borrowing guard cannot be stored alongside the
    /// session. Pair with [`PmuSession::finish`].
    pub fn begin(&mut self) {
        match &mut self.backend {
            BackendImpl::Hw(g) => g.enable(),
            BackendImpl::Sw(sw) => sw.start(clock::cycles_now(), now_ns()),
        }
    }

    /// Stops counting and returns the scaled reading (the pair of
    /// [`PmuSession::begin`]).
    pub fn finish(&mut self) -> PmuReading {
        match &mut self.backend {
            BackendImpl::Hw(g) => {
                g.disable();
                match g.read_counts() {
                    Ok(raw) => {
                        let mut counts = [None; 6];
                        for (event, value) in &raw.values {
                            counts[event.index()] =
                                Some(scale(*value, raw.time_enabled, raw.time_running));
                        }
                        PmuReading {
                            backend: BackendKind::Hardware,
                            counts,
                            time_enabled_ns: raw.time_enabled,
                            time_running_ns: raw.time_running,
                        }
                    }
                    // A failed read degrades to an absent reading rather
                    // than panicking mid-measurement.
                    Err(_) => PmuReading {
                        backend: BackendKind::Hardware,
                        counts: [None; 6],
                        time_enabled_ns: 0,
                        time_running_ns: 0,
                    },
                }
            }
            BackendImpl::Sw(sw) => sw.stop(clock::cycles_now(), now_ns()),
        }
    }
}

impl Default for PmuSession {
    fn default() -> Self {
        Self::new()
    }
}

/// Monotonic nanoseconds for the software backend's enabled-time field.
fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Guard over a counting interval. [`RunningSession::stop`] returns the
/// reading; dropping the guard stops counting without reading.
#[must_use = "stop() returns the reading; dropping discards the interval"]
pub struct RunningSession<'a> {
    session: &'a mut PmuSession,
}

impl RunningSession<'_> {
    /// Stops the counters and returns the scaled reading.
    pub fn stop(self) -> PmuReading {
        self.session.finish()
    }
}

impl Drop for RunningSession<'_> {
    fn drop(&mut self) {
        if let BackendImpl::Hw(g) = &self.session.backend {
            g.disable();
        }
    }
}

/// Multiplexing correction: estimate the full-interval count from the
/// fraction of time the counter was actually scheduled.
fn scale(value: u64, enabled: u64, running: u64) -> u64 {
    if running == 0 || running >= enabled {
        return value;
    }
    // u128 to survive value * enabled overflow on long runs.
    ((value as u128 * enabled as u128) / running as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_corrects_for_multiplexing() {
        assert_eq!(scale(100, 1000, 500), 200);
        assert_eq!(scale(100, 1000, 1000), 100);
        assert_eq!(scale(100, 1000, 0), 100, "no running time: report raw");
        assert_eq!(scale(u64::MAX / 2, 1_000_000, 999_999), 9223381260236036043);
    }

    #[test]
    fn software_session_counts_cycles() {
        let mut s = PmuSession::software();
        assert_eq!(s.backend_kind(), BackendKind::Software);
        let run = s.start();
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let r = run.stop();
        assert_eq!(r.backend, BackendKind::Software);
        assert!(r.get(PmuEvent::Cycles).is_some_and(|c| c > 0));
    }

    #[test]
    fn software_session_reports_all_events() {
        let mut s = PmuSession::software();
        let r = s.start().stop();
        for e in PmuEvent::ALL {
            assert!(
                r.get(e).is_some(),
                "{} missing from software reading",
                e.name()
            );
        }
        assert!(s.unavailable_events().is_empty());
    }

    #[test]
    fn fed_counters_appear_in_reading() {
        let mut s = PmuSession::software();
        s.feed(PmuEvent::Instructions, 2_000);
        s.feed(PmuEvent::LlcLoadMisses, 3);
        let r = s.start().stop();
        assert_eq!(r.get(PmuEvent::Instructions), Some(2_000));
        assert_eq!(r.get(PmuEvent::LlcLoadMisses), Some(3));
        let mpki = r.mpki(PmuEvent::LlcLoadMisses).unwrap();
        assert!((mpki - 1.5).abs() < 1e-12);
    }

    #[test]
    fn auto_session_always_constructs() {
        // The whole point: every environment gets *a* session.
        let mut s = PmuSession::new();
        let r = s.start().stop();
        match r.backend {
            BackendKind::Hardware => {
                assert!(r.time_enabled_ns > 0, "hardware session was scheduled")
            }
            BackendKind::Software => assert!(r.get(PmuEvent::Cycles).is_some()),
        }
    }

    #[test]
    fn guardless_begin_finish_matches_guard_api() {
        let mut s = PmuSession::software();
        s.feed(PmuEvent::Instructions, 500);
        s.begin();
        let r = s.finish();
        assert_eq!(r.get(PmuEvent::Instructions), Some(500));
        assert!(r.get(PmuEvent::Cycles).is_some());
    }

    #[test]
    fn merge_sums_and_degrades_backend() {
        let mut a = PmuReading::empty_software();
        a.counts[PmuEvent::Cycles.index()] = Some(10);
        let mut b = PmuReading::empty_software();
        b.counts[PmuEvent::Cycles.index()] = Some(7);
        let m = a.merge(&b);
        assert_eq!(m.get(PmuEvent::Cycles), Some(17));
        assert_eq!(m.backend, BackendKind::Software);

        let hw = PmuReading {
            backend: BackendKind::Hardware,
            counts: [Some(1); 6],
            time_enabled_ns: 5,
            time_running_ns: 5,
        };
        assert_eq!(hw.merge(&hw).backend, BackendKind::Hardware);
        assert_eq!(hw.merge(&a).backend, BackendKind::Software);
    }

    #[test]
    fn merge_keeps_unmeasurable_events_unmeasurable() {
        let mut a = PmuReading::empty_software();
        a.counts[0] = None;
        let b = PmuReading::empty_software();
        assert_eq!(a.merge(&b).counts[0], None);
        assert_eq!(a.merge(&b).counts[1], Some(0));
    }

    #[test]
    fn multiplexed_flag() {
        let mut r = PmuReading::empty_software();
        assert!(!r.multiplexed());
        r.time_enabled_ns = 100;
        r.time_running_ns = 60;
        assert!(r.multiplexed());
        r.time_running_ns = 100;
        assert!(!r.multiplexed());
    }
}
