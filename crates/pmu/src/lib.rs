//! Hardware PMU counter harness for NextGen-Malloc.
//!
//! The paper's evidence is PMU counters — Table 1 (cycles, instructions,
//! LLC and dTLB misses for `xalancbmk`) and Table 2 (`xmalloc` vs thread
//! count). The rest of this repository *simulates* those counters; this
//! crate measures them on the machine actually running, so the simulator
//! can be checked against silicon:
//!
//! * [`PerfGroup`] — a dependency-free `perf_event_open(2)` wrapper
//!   (the syscall and ioctls come from the vendored `shims/libc`):
//!   one counter group for cycles, instructions, LLC-load/store misses,
//!   and dTLB-load/store misses, read atomically with one syscall and
//!   corrected for kernel multiplexing via `time_enabled`/`time_running`.
//! * [`PmuSession`] — scoped start/stop/read guards over a backend
//!   chosen once: hardware when the syscall works, otherwise
//!   [`SoftwareCounters`] (TSC-measured cycles plus caller-fed values —
//!   the repro harness feeds the cache/TLB simulator) so every caller
//!   works everywhere: EPERM from `perf_event_paranoid`, ENOSYS from
//!   seccomp, PMU-less VMs, CI.
//! * [`PmuReport`] — Table 1/2-shaped rendering and telemetry export in
//!   which every column is labeled with the backend that produced it
//!   (`/hw` vs `/sw`); fallback numbers can never masquerade as
//!   hardware.

#![warn(missing_docs)]
#![cfg(target_os = "linux")]

pub mod events;
pub mod perf;
pub mod report;
pub mod session;
pub mod software;

pub use events::PmuEvent;
pub use perf::{hardware_available, PerfGroup, PmuError};
pub use report::{PmuColumn, PmuReport};
pub use session::{BackendKind, PmuReading, PmuSession, RunningSession};
pub use software::SoftwareCounters;
