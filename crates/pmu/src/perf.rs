//! Raw `perf_event_open(2)` counter groups.
//!
//! One [`PerfGroup`] holds one perf fd per available event, attached to a
//! shared group leader so all counters are scheduled onto the PMU
//! together and read back atomically with one `read(2)`. Events the
//! kernel rejects individually (common inside VMs, where cache/TLB events
//! often don't exist) are recorded as unavailable rather than failing the
//! whole group; only a machine where *no* event opens reports
//! [`PmuError`] to the caller, who then falls back to the software
//! backend.

use crate::events::PmuEvent;

/// `perf_event_attr.read_format`: prepend total-enabled time.
const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
/// `read_format`: prepend total-running time (differs from enabled time
/// when the kernel multiplexes more counters than the PMU has slots).
const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
/// `read_format`: read every group member with one syscall.
const PERF_FORMAT_GROUP: u64 = 1 << 3;

/// `perf_event_attr` flag bit: start disabled (we enable explicitly).
const ATTR_DISABLED: u64 = 1 << 0;
/// Flag bit: don't count kernel-mode cycles. Required for unprivileged
/// use at `perf_event_paranoid >= 1` and matches the paper's user-mode
/// workload counts.
const ATTR_EXCLUDE_KERNEL: u64 = 1 << 5;
/// Flag bit: don't count hypervisor-mode cycles.
const ATTR_EXCLUDE_HV: u64 = 1 << 6;

/// `perf_event_open` flag: close the fd on exec.
const PERF_FLAG_FD_CLOEXEC: libc::c_ulong = 1 << 3;

/// `ioctl` requests on perf fds (`_IO('$', 0..3)`).
const PERF_EVENT_IOC_ENABLE: libc::c_ulong = 0x2400;
const PERF_EVENT_IOC_DISABLE: libc::c_ulong = 0x2401;
const PERF_EVENT_IOC_RESET: libc::c_ulong = 0x2403;
/// `ioctl` argument: apply the request to the whole group.
const PERF_IOC_FLAG_GROUP: libc::c_ulong = 1;

/// `perf_event_attr` through `config2` — `PERF_ATTR_SIZE_VER1` (72
/// bytes). Older struct versions are forward-compatible: the kernel
/// treats absent trailing fields as zero.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup_events: u32,
    bp_type: u32,
    config1: u64,
    config2: u64,
}

const PERF_ATTR_SIZE_VER1: u32 = 72;

/// Why hardware counting is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmuError {
    /// `perf_event_paranoid` (or an LSM) denies unprivileged counting —
    /// EPERM/EACCES.
    PermissionDenied,
    /// The syscall itself is unavailable: kernel without perf events or a
    /// seccomp filter — ENOSYS.
    NoSyscall,
    /// No requested event exists on this machine (bare PMU-less VMs) —
    /// ENOENT/ENODEV/EOPNOTSUPP/EINVAL on every event.
    NoEvents,
}

impl std::fmt::Display for PmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmuError::PermissionDenied => {
                write!(
                    f,
                    "perf_event_open denied (check /proc/sys/kernel/perf_event_paranoid)"
                )
            }
            PmuError::NoSyscall => write!(f, "perf_event_open unavailable (ENOSYS)"),
            PmuError::NoEvents => write!(f, "no requested PMU event is supported here"),
        }
    }
}

impl std::error::Error for PmuError {}

fn classify(errno: libc::c_int) -> PmuError {
    match errno {
        libc::EPERM | libc::EACCES => PmuError::PermissionDenied,
        libc::ENOSYS => PmuError::NoSyscall,
        _ => PmuError::NoEvents,
    }
}

/// Opens one perf fd for `event` on the calling thread, any CPU,
/// attached to `group_fd` (-1 to lead a new group).
fn open_event(event: PmuEvent, group_fd: libc::c_int) -> Result<libc::c_int, PmuError> {
    let mut attr = PerfEventAttr {
        type_: event.perf_type(),
        size: PERF_ATTR_SIZE_VER1,
        config: event.perf_config(),
        read_format: PERF_FORMAT_GROUP
            | PERF_FORMAT_TOTAL_TIME_ENABLED
            | PERF_FORMAT_TOTAL_TIME_RUNNING,
        flags: ATTR_DISABLED | ATTR_EXCLUDE_KERNEL | ATTR_EXCLUDE_HV,
        ..PerfEventAttr::default()
    };
    // Only the leader carries the disabled bit: enabling the leader with
    // PERF_IOC_FLAG_GROUP starts every sibling at once.
    if group_fd != -1 {
        attr.flags &= !ATTR_DISABLED;
    }
    // SAFETY: attr is a valid, fully initialized perf_event_attr and
    // outlives the call; remaining args are plain integers.
    let fd = unsafe {
        libc::syscall(
            libc::SYS_perf_event_open,
            &mut attr as *mut PerfEventAttr,
            0 as libc::pid_t,  // calling thread
            -1 as libc::c_int, // any CPU
            group_fd,
            PERF_FLAG_FD_CLOEXEC,
        )
    };
    if fd < 0 {
        Err(classify(libc::errno()))
    } else {
        Ok(fd as libc::c_int)
    }
}

/// A group of hardware counters attached to the calling thread.
///
/// The group counts only while between [`PerfGroup::enable`] and
/// [`PerfGroup::disable`]; [`PerfGroup::read_counts`] may be called at
/// any time (perf fds are readable cross-thread, but the counters tick
/// only on the thread that opened them).
#[derive(Debug)]
pub struct PerfGroup {
    /// Group leader fd (first successfully opened event).
    leader: libc::c_int,
    /// `(event, fd)` in attach order — the order `read` returns values.
    members: Vec<(PmuEvent, libc::c_int)>,
    /// Events this machine rejected at open.
    unavailable: Vec<PmuEvent>,
}

impl PerfGroup {
    /// Opens a group counting `events` on the calling thread.
    ///
    /// Individual events the kernel rejects are recorded in
    /// [`PerfGroup::unavailable_events`]; the open only errs when *no*
    /// event can be counted.
    ///
    /// # Errors
    ///
    /// [`PmuError`] describing why hardware counting is impossible here.
    pub fn open(events: &[PmuEvent]) -> Result<PerfGroup, PmuError> {
        let mut group = PerfGroup {
            leader: -1,
            members: Vec::with_capacity(events.len()),
            unavailable: Vec::new(),
        };
        let mut last_err = PmuError::NoEvents;
        for &e in events {
            match open_event(e, group.leader) {
                Ok(fd) => {
                    if group.leader == -1 {
                        group.leader = fd;
                    }
                    group.members.push((e, fd));
                }
                Err(err) => {
                    // Permission and missing-syscall failures are
                    // machine-wide: no later event will fare better.
                    if err != PmuError::NoEvents {
                        group.close_all();
                        return Err(err);
                    }
                    last_err = err;
                    group.unavailable.push(e);
                }
            }
        }
        if group.members.is_empty() {
            return Err(last_err);
        }
        Ok(group)
    }

    /// Events that could not be opened on this machine.
    #[must_use]
    pub fn unavailable_events(&self) -> &[PmuEvent] {
        &self.unavailable
    }

    /// Zeroes and starts every counter in the group.
    pub fn enable(&self) {
        // SAFETY: leader is a live perf fd owned by self.
        unsafe {
            libc::ioctl(self.leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
            libc::ioctl(self.leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        }
    }

    /// Stops every counter in the group (counts are retained for
    /// reading).
    pub fn disable(&self) {
        // SAFETY: leader is a live perf fd owned by self.
        unsafe {
            libc::ioctl(self.leader, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
        }
    }

    /// Reads the whole group with one syscall.
    ///
    /// # Errors
    ///
    /// [`PmuError::NoEvents`] if the kernel returns a malformed buffer
    /// (never observed in practice; defensive).
    pub fn read_counts(&self) -> Result<GroupCounts, PmuError> {
        // Layout with GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING:
        // { nr, time_enabled, time_running, value[nr] }.
        let words = 3 + self.members.len();
        let mut buf = vec![0u64; words];
        // SAFETY: buf is a writable buffer of exactly `words * 8` bytes.
        let n = unsafe {
            libc::read(
                self.leader,
                buf.as_mut_ptr().cast::<libc::c_void>(),
                words * 8,
            )
        };
        if n < 24 {
            return Err(PmuError::NoEvents);
        }
        let nr = buf[0] as usize;
        if nr != self.members.len() || (n as usize) < (3 + nr) * 8 {
            return Err(PmuError::NoEvents);
        }
        let mut counts = GroupCounts {
            time_enabled: buf[1],
            time_running: buf[2],
            values: Vec::with_capacity(nr),
        };
        for (i, &(event, _)) in self.members.iter().enumerate() {
            counts.values.push((event, buf[3 + i]));
        }
        Ok(counts)
    }

    fn close_all(&mut self) {
        for &(_, fd) in &self.members {
            // SAFETY: fd is a live perf fd owned by self, closed once.
            unsafe { libc::close(fd) };
        }
        self.members.clear();
        self.leader = -1;
    }
}

impl Drop for PerfGroup {
    fn drop(&mut self) {
        self.close_all();
    }
}

/// One raw group read: times plus `(event, raw count)` pairs in attach
/// order. Counts are unscaled; multiplexing correction happens in
/// [`crate::PmuReading`].
#[derive(Debug, Clone)]
pub struct GroupCounts {
    /// Nanoseconds the group was enabled.
    pub time_enabled: u64,
    /// Nanoseconds the group was actually counting (less than enabled
    /// when the kernel multiplexed it off the PMU).
    pub time_running: u64,
    /// Raw counter values by event.
    pub values: Vec<(PmuEvent, u64)>,
}

/// Probes whether hardware counting works here (opens and closes a
/// minimal cycles counter).
///
/// # Errors
///
/// The [`PmuError`] a real session would hit.
pub fn hardware_available() -> Result<(), PmuError> {
    PerfGroup::open(&[PmuEvent::Cycles]).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_layout_matches_abi() {
        assert_eq!(std::mem::size_of::<PerfEventAttr>(), 72);
        assert_eq!(std::mem::offset_of!(PerfEventAttr, config), 8);
        assert_eq!(std::mem::offset_of!(PerfEventAttr, read_format), 32);
        assert_eq!(std::mem::offset_of!(PerfEventAttr, flags), 40);
        assert_eq!(std::mem::offset_of!(PerfEventAttr, config1), 56);
    }

    #[test]
    fn probe_and_group_agree() {
        // Whatever this machine supports, the probe and a full-group open
        // must agree on availability.
        match hardware_available() {
            Ok(()) => {
                let g = PerfGroup::open(&PmuEvent::ALL).expect("probe said hardware works");
                g.enable();
                // A little real work so cycles accumulate.
                let mut acc = 0u64;
                for i in 0..100_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                g.disable();
                let counts = g.read_counts().expect("group read");
                let cycles = counts
                    .values
                    .iter()
                    .find(|(e, _)| *e == PmuEvent::Cycles)
                    .map(|&(_, v)| v);
                assert!(cycles.is_some_and(|c| c > 0), "cycles counted: {counts:?}");
                assert!(counts.time_enabled > 0);
            }
            Err(e) => {
                // Fallback environments (CI, seccomp sandboxes) must
                // produce a *classified* error, not a panic.
                assert!(matches!(
                    e,
                    PmuError::PermissionDenied | PmuError::NoSyscall | PmuError::NoEvents
                ));
            }
        }
    }
}
