//! Per-thread sharded heap with atomic remote-free queues — the
//! state-of-the-art-UMA baseline.
//!
//! This is the design the paper's §2.3 describes: "TCMalloc uses per-CPU/
//! thread cache to maintain metadata associated with each logical core,
//! avoiding locks for most memory allocations", while cross-thread frees
//! (the `xmalloc` pattern: "a thread allocates data but a different thread
//! deallocates") go through atomic operations on the owning shard's
//! remote queue. Those per-block atomic RMWs are exactly what
//! NextGen-Malloc removes by serializing all allocation on one core
//! (§3.1.3 "Removing unnecessary atomic operations in UMAs").
//!
//! The remote queue threads its list *through the freed blocks* (Mimalloc's
//! thread-delayed free), so a burst of cross-thread frees also drags remote
//! user-data lines through the freeing core's cache — the Table 2 effect.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::classes::layout_to_class;
use crate::error::AllocError;
use crate::seg_heap::SegregatedHeap;
use crate::segment::SegmentRef;
use crate::stats::HeapStats;
use crate::sys::{round_to_os_page, Mapping};
use crate::Heap;

/// How many local operations between remote-queue drains.
const DRAIN_INTERVAL: u64 = 64;

/// A lock-free multi-producer free queue, drained wholesale by the owner.
struct RemoteQueue {
    head: AtomicPtr<u8>,
    pushes: AtomicU64,
}

impl RemoteQueue {
    fn new() -> Self {
        RemoteQueue {
            head: AtomicPtr::new(std::ptr::null_mut()),
            pushes: AtomicU64::new(0),
        }
    }

    /// Pushes a dead block, storing the old head in its first 8 bytes.
    ///
    /// # Safety
    ///
    /// `ptr` must be a small block (≥ 16 bytes) that the caller owns (it
    /// was just freed) and whose memory stays mapped until drained or the
    /// registry is dropped.
    unsafe fn push(&self, ptr: NonNull<u8>) {
        let mut old = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: we own the dead block; its first word is scratch.
            unsafe { ptr.as_ptr().cast::<*mut u8>().write(old) };
            // This CAS is the per-free atomic RMW of a conventional UMA.
            match self.head.compare_exchange_weak(
                old,
                ptr.as_ptr(),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
        self.pushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes the entire list (single atomic swap).
    fn take_all(&self) -> *mut u8 {
        self.head.swap(std::ptr::null_mut(), Ordering::Acquire)
    }
}

struct ShardInner {
    remote: RemoteQueue,
    index: usize,
}

struct Registry {
    shards: Box<[Arc<ShardInner>]>,
    /// Heaps of dropped handles, kept mapped so that late remote frees
    /// (pushes into their queues) never write to unmapped memory.
    graveyard: Mutex<Vec<SegregatedHeap>>,
    taken: Mutex<Vec<bool>>,
}

/// A heap sharded across `n` owner threads.
pub struct ShardedHeap {
    registry: Arc<Registry>,
}

impl ShardedHeap {
    /// Creates `n` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        let shards: Box<[Arc<ShardInner>]> = (0..n)
            .map(|index| {
                Arc::new(ShardInner {
                    remote: RemoteQueue::new(),
                    index,
                })
            })
            .collect();
        ShardedHeap {
            registry: Arc::new(Registry {
                shards,
                graveyard: Mutex::new(Vec::new()),
                taken: Mutex::new(vec![false; n]),
            }),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.registry.shards.len()
    }

    /// Claims shard `i`'s handle. Each shard may be claimed once; give the
    /// handle to the thread that will own it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or already claimed.
    pub fn handle(&self, i: usize) -> ShardHandle {
        {
            let mut taken = self.registry.taken.lock().expect("taken poisoned");
            assert!(!taken[i], "shard {i} already claimed");
            taken[i] = true;
        }
        let inner = Arc::clone(&self.registry.shards[i]);
        let ctx = Arc::as_ptr(&inner) as *mut u8;
        ShardHandle {
            heap: SegregatedHeap::with_ctx(i as u64, ctx),
            inner,
            registry: Arc::clone(&self.registry),
            ops: 0,
        }
    }

    /// Total cross-thread frees pushed through remote queues so far.
    pub fn remote_frees(&self) -> u64 {
        self.registry
            .shards
            .iter()
            .map(|s| s.remote.pushes.load(Ordering::Relaxed))
            .sum()
    }
}

/// One thread's endpoint: a private heap plus routing for frees.
pub struct ShardHandle {
    heap: SegregatedHeap,
    inner: Arc<ShardInner>,
    registry: Arc<Registry>,
    ops: u64,
}

impl ShardHandle {
    /// This handle's shard index.
    pub fn index(&self) -> usize {
        self.inner.index
    }

    /// Drains this shard's remote-free queue into the local heap.
    ///
    /// Returns the number of blocks reclaimed.
    pub fn drain_remote(&mut self) -> usize {
        let mut cur = self.inner.remote.take_all();
        let mut n = 0;
        while !cur.is_null() {
            // SAFETY: blocks on the queue were pushed by `push`, which
            // wrote the next pointer into the first word; the block stays
            // mapped because its owning heap is alive (it is `self.heap`).
            let next = unsafe { cur.cast::<*mut u8>().read() };
            let p = NonNull::new(cur).expect("queue nodes are non-null");
            // SAFETY: the block was live when pushed and belongs to this
            // shard's heap (routing checked owner_ctx before pushing).
            unsafe { self.heap.deallocate_by_ptr(p) };
            cur = next;
            n += 1;
        }
        n
    }

    fn maybe_drain(&mut self) {
        self.ops += 1;
        if self.ops.is_multiple_of(DRAIN_INTERVAL) {
            self.drain_remote();
        }
    }

    /// Local heap statistics (excluding blocks queued remotely).
    pub fn stats(&self) -> HeapStats {
        self.heap.stats()
    }
}

// SAFETY: the handle's heap returns fresh aligned blocks; frees are routed
// so each block is released exactly once on its owning shard.
unsafe impl Heap for ShardHandle {
    fn allocate(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout_to_class(layout.size(), layout.align()).is_none() {
            // Large blocks are shard-independent dedicated mappings: any
            // handle may free them, so they are served (and later freed)
            // outside shard accounting entirely.
            let len = round_to_os_page(layout.size());
            let m = if layout.align() > crate::sys::os_page_size() {
                Mapping::new_aligned(len, layout.align())?
            } else {
                Mapping::new(len)?
            };
            return Ok(m.into_raw().0);
        }
        self.maybe_drain();
        self.heap.allocate(layout)
    }

    unsafe fn deallocate(&mut self, ptr: NonNull<u8>, layout: Layout) {
        if layout_to_class(layout.size(), layout.align()).is_none() {
            // Large blocks are standalone mappings; free directly.
            let len = round_to_os_page(layout.size());
            // SAFETY: allocated as a dedicated mapping of `len` bytes by
            // whichever shard served it; ownership travels with the pointer.
            drop(unsafe { Mapping::from_raw(ptr, len) });
            return;
        }
        // SAFETY: small blocks come from some shard's segment.
        let seg = unsafe { SegmentRef::of_ptr(ptr) };
        // SAFETY: live segment (kept mapped by its heap or the graveyard).
        let owner = unsafe { seg.header() }.owner_ctx.load(Ordering::Acquire);
        if owner == Arc::as_ptr(&self.inner) as *mut u8 {
            // SAFETY: our own block; forwarded contract.
            unsafe { self.heap.deallocate(ptr, layout) };
            self.maybe_drain();
        } else {
            // Find the owning shard and push to its remote queue — the
            // atomic RMW a conventional UMA pays on cross-thread frees.
            let shard = self
                .registry
                .shards
                .iter()
                .find(|s| Arc::as_ptr(s) as *mut u8 == owner)
                .expect("block's owner_ctx does not match any shard");
            // SAFETY: the block is dead (caller freed it) and its segment
            // stays mapped (live handle or graveyard).
            unsafe { shard.remote.push(ptr) };
        }
    }

    fn stats(&self) -> HeapStats {
        self.heap.stats()
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        // Reclaim whatever is already queued, then park the heap in the
        // graveyard so late remote pushes still target mapped memory.
        self.drain_remote();
        let heap = std::mem::replace(&mut self.heap, SegregatedHeap::new(u64::MAX));
        self.registry
            .graveyard
            .lock()
            .expect("graveyard poisoned")
            .push(heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn local_roundtrip() {
        let sh = ShardedHeap::new(2);
        let mut h = sh.handle(0);
        let p = h.allocate(layout(64)).unwrap();
        // SAFETY: our live block.
        unsafe { h.deallocate(p, layout(64)) };
        assert_eq!(h.stats().live_blocks, 0);
        assert_eq!(sh.remote_frees(), 0, "same-shard free must not hit atomics");
    }

    #[test]
    fn cross_shard_free_goes_remote() {
        let sh = ShardedHeap::new(2);
        let mut a = sh.handle(0);
        let mut b = sh.handle(1);
        let p = a.allocate(layout(128)).unwrap();
        // SAFETY: live block; handle b frees a block owned by shard 0.
        unsafe { b.deallocate(p, layout(128)) };
        assert_eq!(sh.remote_frees(), 1);
        // Owner drains it.
        assert_eq!(a.drain_remote(), 1);
        assert_eq!(a.stats().live_blocks, 0);
    }

    #[test]
    fn xmalloc_pattern_producer_consumer() {
        // One thread allocates, the other frees — Boreham's xmalloc.
        let sh = Arc::new(ShardedHeap::new(2));
        let mut prod = sh.handle(0);
        let mut cons = sh.handle(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(64);
        let consumer = std::thread::spawn(move || {
            for addr in rx {
                let p = NonNull::new(addr as *mut u8).unwrap();
                // SAFETY: producer sent a live block and relinquished it.
                unsafe { cons.deallocate(p, layout(256)) };
            }
            cons
        });
        for _ in 0..10_000 {
            let p = prod.allocate(layout(256)).unwrap();
            // SAFETY: fresh block.
            unsafe { std::ptr::write_bytes(p.as_ptr(), 0x11, 256) };
            tx.send(p.as_ptr() as usize).unwrap();
        }
        drop(tx);
        let _cons = consumer.join().unwrap();
        assert_eq!(sh.remote_frees(), 10_000);
        prod.drain_remote();
        assert_eq!(prod.stats().live_blocks, 0);
        // Blocks were recycled through the remote queue, not leaked.
        assert!(prod.stats().segments <= 2);
    }

    #[test]
    fn late_remote_free_after_owner_drop_is_safe() {
        let sh = ShardedHeap::new(2);
        let mut a = sh.handle(0);
        let mut b = sh.handle(1);
        let p = a.allocate(layout(64)).unwrap();
        drop(a); // heap goes to graveyard, stays mapped
                 // SAFETY: block memory is still mapped (graveyard).
        unsafe { b.deallocate(p, layout(64)) };
        assert_eq!(sh.remote_frees(), 1);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let sh = ShardedHeap::new(1);
        let _a = sh.handle(0);
        let _b = sh.handle(0);
    }

    #[test]
    fn periodic_drain_bounds_queue() {
        let sh = ShardedHeap::new(2);
        let mut a = sh.handle(0);
        let mut b = sh.handle(1);
        let ptrs: Vec<_> = (0..1000).map(|_| a.allocate(layout(64)).unwrap()).collect();
        for p in ptrs {
            // SAFETY: live blocks, freed once by shard 1.
            unsafe { b.deallocate(p, layout(64)) };
        }
        // a's next allocations trigger periodic drains.
        for _ in 0..(2 * DRAIN_INTERVAL) {
            let p = a.allocate(layout(64)).unwrap();
            // SAFETY: freed immediately, same shard.
            unsafe { a.deallocate(p, layout(64)) };
        }
        a.drain_remote();
        assert_eq!(a.stats().live_blocks, 0);
    }
}
