//! Raw memory mapping: the `mmap()` layer under every heap.
//!
//! The paper's §2.1 describes the two-level split: user-level allocators
//! grab whole pages from the kernel with `mmap()` and carve them up to
//! avoid per-`malloc` mode switches. This module is that bottom level.

use std::io;
use std::ptr::NonNull;

use crate::error::AllocError;

/// Rounds `n` up to a multiple of the OS page size.
pub fn round_to_os_page(n: usize) -> usize {
    let page = os_page_size();
    n.checked_add(page - 1)
        .map(|v| v & !(page - 1))
        .unwrap_or(usize::MAX & !(page - 1))
}

/// The operating system's page size in bytes.
pub fn os_page_size() -> usize {
    // SAFETY: sysconf with a valid name has no preconditions.
    let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    if sz <= 0 {
        4096
    } else {
        sz as usize
    }
}

/// An owned anonymous private mapping, unmapped on drop.
#[derive(Debug)]
pub struct Mapping {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: a Mapping uniquely owns its address range; transferring that
// ownership to another thread is sound (munmap may be called from any
// thread).
unsafe impl Send for Mapping {}
// SAFETY: Mapping's API hands out the base pointer but all mutation happens
// through raw pointers governed by the caller; the struct itself is
// immutable after construction.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `len` bytes of zeroed anonymous memory (rounded up to whole OS
    /// pages).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the kernel refuses the mapping and
    /// [`AllocError::SizeOverflow`] for degenerate lengths.
    pub fn new(len: usize) -> Result<Self, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroSize);
        }
        let len = round_to_os_page(len);
        // SAFETY: anonymous private mapping with no fixed address; all
        // arguments are valid by construction.
        let p = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(AllocError::OutOfMemory);
        }
        let ptr = NonNull::new(p.cast::<u8>()).ok_or(AllocError::OutOfMemory)?;
        Ok(Mapping { ptr, len })
    }

    /// Maps `len` bytes whose base address is a multiple of `align`.
    ///
    /// Implemented by over-mapping `len + align` and trimming the head and
    /// tail, the standard trick for segment-aligned allocators (the
    /// alignment lets `free(ptr)` recover its segment with a mask).
    ///
    /// # Errors
    ///
    /// As [`Mapping::new`]; additionally [`AllocError::SizeOverflow`] if
    /// `align` is not a power of two or `len + align` overflows.
    pub fn new_aligned(len: usize, align: usize) -> Result<Self, AllocError> {
        if !align.is_power_of_two() {
            return Err(AllocError::SizeOverflow);
        }
        let page = os_page_size();
        if align <= page {
            return Mapping::new(len);
        }
        let len = round_to_os_page(len);
        let total = len.checked_add(align).ok_or(AllocError::SizeOverflow)?;
        // SAFETY: as in `new`.
        let p = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                total,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(AllocError::OutOfMemory);
        }
        let base = p as usize;
        let aligned = (base + align - 1) & !(align - 1);
        let head = aligned - base;
        let tail = total - head - len;
        if head > 0 {
            // SAFETY: `[base, base+head)` is part of the mapping we just
            // created and nothing points into it.
            unsafe { libc::munmap(p, head) };
        }
        if tail > 0 {
            // SAFETY: `[aligned+len, base+total)` likewise.
            unsafe { libc::munmap((aligned + len) as *mut libc::c_void, tail) };
        }
        let ptr =
            NonNull::new(aligned as *mut u8).expect("aligned address cannot be null for align>0");
        Ok(Mapping { ptr, len })
    }

    /// Base address of the mapping.
    pub fn as_ptr(&self) -> NonNull<u8> {
        self.ptr
    }

    /// Length in bytes (whole OS pages).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: zero-length mappings cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Releases ownership without unmapping; the caller becomes responsible
    /// for the range.
    pub fn into_raw(self) -> (NonNull<u8>, usize) {
        let out = (self.ptr, self.len);
        std::mem::forget(self);
        out
    }

    /// Reconstructs a mapping from [`Mapping::into_raw`] output.
    ///
    /// # Safety
    ///
    /// `(ptr, len)` must come from `into_raw` on a mapping that has not been
    /// reconstructed or unmapped since.
    pub unsafe fn from_raw(ptr: NonNull<u8>, len: usize) -> Self {
        Mapping { ptr, len }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: we own `[ptr, ptr+len)`, mapped by mmap and never unmapped.
        let rc = unsafe { libc::munmap(self.ptr.as_ptr().cast(), self.len) };
        debug_assert_eq!(rc, 0, "munmap failed: {}", io::Error::last_os_error());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_zeroed_and_writable() {
        let m = Mapping::new(8192).unwrap();
        let p = m.as_ptr().as_ptr();
        // SAFETY: we own the fresh mapping of >= 8192 bytes.
        unsafe {
            assert_eq!(*p, 0);
            assert_eq!(*p.add(8191), 0);
            *p = 0xAB;
            *p.add(8191) = 0xCD;
            assert_eq!(*p, 0xAB);
            assert_eq!(*p.add(8191), 0xCD);
        }
    }

    #[test]
    fn length_rounds_to_os_pages() {
        let m = Mapping::new(1).unwrap();
        assert_eq!(m.len() % os_page_size(), 0);
        assert!(m.len() >= os_page_size());
    }

    #[test]
    fn aligned_mapping_is_aligned() {
        let align = 4 * 1024 * 1024;
        let m = Mapping::new_aligned(align, align).unwrap();
        assert_eq!(m.as_ptr().as_ptr() as usize % align, 0);
        assert_eq!(m.len(), align);
        // Whole range usable.
        // SAFETY: fresh mapping of `align` bytes.
        unsafe {
            *m.as_ptr().as_ptr() = 1;
            *m.as_ptr().as_ptr().add(align - 1) = 2;
        }
    }

    #[test]
    fn zero_len_rejected() {
        assert_eq!(Mapping::new(0).unwrap_err(), AllocError::ZeroSize);
    }

    #[test]
    fn non_pow2_align_rejected() {
        assert_eq!(
            Mapping::new_aligned(4096, 3 * 4096).unwrap_err(),
            AllocError::SizeOverflow
        );
    }

    #[test]
    fn raw_roundtrip_does_not_double_free() {
        let m = Mapping::new(4096).unwrap();
        let (p, l) = m.into_raw();
        // SAFETY: fresh from into_raw.
        let m2 = unsafe { Mapping::from_raw(p, l) };
        drop(m2);
    }

    #[test]
    fn round_to_os_page_saturates() {
        assert_eq!(round_to_os_page(1), os_page_size());
        assert_eq!(round_to_os_page(os_page_size()), os_page_size());
        // Near-usize::MAX should not panic.
        let _ = round_to_os_page(usize::MAX - 1);
    }
}
