//! The segregated-layout heap: NextGen-Malloc's service-side allocator.
//!
//! All bookkeeping — page descriptors, free lists as 16-bit indices —
//! lives in the segment metadata regions, never inside user blocks
//! (Figure 2, segregated layout). The heap is strictly single-owner
//! (`&mut self` everywhere, no atomics, not `Sync`): when it runs on the
//! dedicated service core, §3.1.3's "sequential execution can be
//! guaranteed" holds structurally and every atomic a conventional UMA
//! would need is simply absent.

use std::alloc::Layout;
use std::ptr::NonNull;

use crate::classes::{class_to_size, layout_to_class, NUM_CLASSES};
use crate::error::AllocError;
use crate::segment::{PageDesc, SegmentRef, NO_BLOCK, NO_CLASS, PAGE_SIZE};
use crate::stats::HeapStats;
use crate::sys::{round_to_os_page, Mapping};
use crate::Heap;

/// A single-owner heap with segregated metadata.
pub struct SegregatedHeap {
    owner_id: u64,
    /// Stamped into each segment's `owner_ctx` (used by `ShardedHeap` to
    /// route cross-thread frees). Null for plain heaps.
    owner_ctx: *mut u8,
    /// Intrusive list of segments (via `SegmentHeader::next_segment`).
    segments: *mut crate::segment::SegmentHeader,
    /// Head of the partially-free page list per size class.
    bins: [*mut PageDesc; NUM_CLASSES],
    stats: HeapStats,
}

// SAFETY: the heap owns its segments exclusively; the raw pointers are not
// shared with any other thread unless a wrapper (LockedHeap, the offload
// service) serializes access. Moving the heap to another thread is sound.
unsafe impl Send for SegregatedHeap {}

impl SegregatedHeap {
    /// Creates an empty heap. No memory is mapped until the first
    /// allocation.
    pub fn new(owner_id: u64) -> Self {
        Self::with_ctx(owner_id, std::ptr::null_mut())
    }

    /// Creates an empty heap whose segments carry `ctx` in their headers.
    ///
    /// `ctx` is opaque to this heap; `ShardedHeap` uses it to find the
    /// owning shard from a bare pointer during cross-thread frees.
    pub fn with_ctx(owner_id: u64, ctx: *mut u8) -> Self {
        SegregatedHeap {
            owner_id,
            owner_ctx: ctx,
            segments: std::ptr::null_mut(),
            bins: [std::ptr::null_mut(); NUM_CLASSES],
            stats: HeapStats::default(),
        }
    }

    /// The identifier segments are stamped with.
    pub fn owner_id(&self) -> u64 {
        self.owner_id
    }

    /// Frees a small block located purely from its address, reading the
    /// size class from the page descriptor.
    ///
    /// This is the drain path for remote-free queues, where the original
    /// `Layout` is not carried with the pointer.
    ///
    /// # Safety
    ///
    /// `ptr` must be a live small block previously returned by
    /// `allocate` on this heap and not freed since.
    pub unsafe fn deallocate_by_ptr(&mut self, ptr: NonNull<u8>) {
        // SAFETY: per contract, ptr is interior to one of our segments.
        let seg = unsafe { SegmentRef::of_ptr(ptr) };
        // SAFETY: as above.
        let (page, block) = unsafe { seg.locate(ptr) };
        // SAFETY: exclusive access.
        let d = unsafe { seg.desc(page) };
        debug_assert!(d.class != NO_CLASS && d.used > 0);
        let class = crate::classes::SizeClass(d.class);
        // SAFETY: block < nblocks.
        unsafe {
            *seg.index_array(page).add(block) = d.free_head;
        }
        d.free_head = block as u16;
        d.used -= 1;
        if !d.in_bin {
            let c = d.class as usize;
            d.in_bin = true;
            d.next_in_bin = self.bins[c];
            self.bins[c] = d as *mut PageDesc;
        }
        self.stats.live_blocks -= 1;
        self.stats.live_bytes -= class_to_size(class) as u64;
        self.stats.total_frees += 1;
    }

    fn bump_peak(&mut self) {
        let live = self.stats.live_bytes + self.stats.large_bytes;
        if live > self.stats.peak_live_bytes {
            self.stats.peak_live_bytes = live;
        }
    }

    /// Pops one block from `page` inside `seg`. The page must have space.
    ///
    /// # Safety
    ///
    /// Exclusive access to a live segment; `page` assigned to a class.
    unsafe fn pop_block(&mut self, seg: SegmentRef, page: usize) -> NonNull<u8> {
        // SAFETY: per contract.
        let d = unsafe { seg.desc(page) };
        debug_assert!(d.has_space());
        let idx = if d.free_head != NO_BLOCK {
            let idx = d.free_head;
            // SAFETY: idx < bump <= nblocks, so the slot was initialized
            // when the block was freed.
            d.free_head = unsafe { *seg.index_array(page).add(idx as usize) };
            idx
        } else {
            let idx = d.bump;
            d.bump += 1;
            idx
        };
        d.used += 1;
        let addr =
            // SAFETY: idx < nblocks and nblocks*block_size <= PAGE_SIZE.
            unsafe { seg.page_base(page).as_ptr().add(idx as usize * d.block_size as usize) };
        NonNull::new(addr).expect("block address in mapped page is non-null")
    }

    /// Takes a page from any segment (or a new segment) and assigns it to
    /// `class`.
    fn assign_fresh_page(&mut self, class: usize) -> Result<(SegmentRef, usize), AllocError> {
        // Try existing segments first.
        let mut cur = self.segments;
        while !cur.is_null() {
            let seg = SegmentRef::from_raw(cur);
            // SAFETY: segments in our list are alive and exclusively ours.
            if let Some(page) = unsafe { seg_alloc_page(seg) } {
                self.init_page(seg, page, class);
                return Ok((seg, page));
            }
            // SAFETY: as above.
            cur = unsafe { seg.header().next_segment };
        }
        // Map a new segment.
        let seg = SegmentRef::create(self.owner_id)?;
        // SAFETY: fresh segment, exclusive.
        unsafe {
            seg.header().next_segment = self.segments;
            seg.header()
                .owner_ctx
                .store(self.owner_ctx, std::sync::atomic::Ordering::Release);
        }
        self.segments = seg_raw(seg);
        self.stats.segments += 1;
        // SAFETY: fresh segment has pages available.
        let page = unsafe { seg_alloc_page(seg) }.expect("fresh segment must have pages");
        self.init_page(seg, page, class);
        Ok((seg, page))
    }

    fn init_page(&mut self, seg: SegmentRef, page: usize, class: usize) {
        let size = class_to_size(crate::classes::SizeClass(class as u16));
        // SAFETY: page freshly popped, exclusive access.
        let d = unsafe { seg.desc(page) };
        d.class = class as u16;
        d.block_size = size as u32;
        d.nblocks = (PAGE_SIZE / size) as u16;
        d.used = 0;
        d.bump = 0;
        d.free_head = NO_BLOCK;
        d.in_bin = true;
        d.next_in_bin = self.bins[class];
        self.bins[class] = d as *mut PageDesc;
        self.stats.pages_in_use += 1;
    }

    fn alloc_small(&mut self, class: usize) -> Result<NonNull<u8>, AllocError> {
        loop {
            let head = self.bins[class];
            if head.is_null() {
                break;
            }
            // SAFETY: bin pages belong to our live segments.
            let d = unsafe { &mut *head };
            if d.has_space() {
                let page = d.page_index as usize;
                // SAFETY: descriptor address is interior to its segment.
                let seg = unsafe {
                    SegmentRef::of_ptr(NonNull::new(head.cast::<u8>()).expect("non-null desc"))
                };
                // SAFETY: exclusive, page assigned.
                let p = unsafe { self.pop_block(seg, page) };
                return Ok(p);
            }
            // Full page: unlink and keep looking.
            self.bins[class] = d.next_in_bin;
            d.in_bin = false;
            d.next_in_bin = std::ptr::null_mut();
        }
        let (seg, page) = self.assign_fresh_page(class)?;
        // SAFETY: exclusive, freshly assigned page has space.
        Ok(unsafe { self.pop_block(seg, page) })
    }

    fn alloc_large(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        let len = round_to_os_page(layout.size());
        let m = if layout.align() > crate::sys::os_page_size() {
            Mapping::new_aligned(len, layout.align())?
        } else {
            Mapping::new(len)?
        };
        let (ptr, _) = m.into_raw();
        self.stats.large_allocs += 1;
        self.stats.large_bytes += len as u64;
        self.stats.total_allocs += 1;
        self.bump_peak();
        Ok(ptr)
    }

    /// Allocates up to `count` blocks of `class` in one pass, feeding each
    /// block to `sink`. Returns how many blocks were produced.
    ///
    /// This is the service-side half of the batched handshake: one
    /// request refills a whole client magazine, so the per-block cost here
    /// is a bin-head pop with no round trip attached. Stops early (with
    /// `Ok(n)`, `n < count`) only when the OS refuses more memory after at
    /// least one block was produced.
    ///
    /// # Errors
    ///
    /// Returns the mapping failure when not even one block could be
    /// allocated.
    pub fn allocate_batch(
        &mut self,
        class: crate::classes::SizeClass,
        count: usize,
        sink: &mut dyn FnMut(NonNull<u8>),
    ) -> Result<usize, AllocError> {
        let c = class.0 as usize;
        let size = class_to_size(class) as u64;
        let mut n = 0;
        while n < count {
            match self.alloc_small(c) {
                Ok(p) => {
                    self.stats.live_blocks += 1;
                    self.stats.live_bytes += size;
                    self.stats.total_allocs += 1;
                    sink(p);
                    n += 1;
                }
                Err(e) if n == 0 => return Err(e),
                Err(_) => break,
            }
        }
        self.bump_peak();
        Ok(n)
    }

    /// Frees a batch of small blocks located from their addresses alone
    /// (the bulk form of [`SegregatedHeap::deallocate_by_ptr`], used when
    /// a client flushes its buffered frees or returns an unused magazine).
    ///
    /// # Safety
    ///
    /// Every pointer must be a live small block previously returned by
    /// `allocate` on this heap and not freed since, with no duplicates in
    /// the batch.
    pub unsafe fn deallocate_batch(&mut self, ptrs: impl IntoIterator<Item = NonNull<u8>>) {
        for p in ptrs {
            // SAFETY: forwarded contract, per pointer.
            unsafe { self.deallocate_by_ptr(p) };
        }
    }

    /// Ensures class `class` has a page with free space, assigning a
    /// fresh one if its bin is empty. Returns `true` if a page was
    /// prepared (the §3.3.2 "predictively preallocate" hook — run it
    /// from the service's idle time and the next allocation's slow path
    /// has already been paid for off the critical path).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures when a new segment is needed.
    pub fn prepare_class(&mut self, class: crate::classes::SizeClass) -> Result<bool, AllocError> {
        let c = class.0 as usize;
        let mut head = self.bins[c];
        while !head.is_null() {
            // SAFETY: bin pages belong to our live segments.
            let d = unsafe { &mut *head };
            if d.has_space() {
                return Ok(false);
            }
            head = d.next_in_bin;
        }
        self.assign_fresh_page(c)?;
        Ok(true)
    }

    /// Housekeeping: returns fully-free pages to their segments, rebuilds
    /// the bins, and unmaps segments with no pages in use.
    ///
    /// Intended to run from the service core's idle hook — deferred work is
    /// free there, which is one of the paper's arguments for the dedicated
    /// room.
    pub fn release_empty(&mut self) {
        self.bins = [std::ptr::null_mut(); NUM_CLASSES];
        let mut cur = self.segments;
        let mut keep: *mut crate::segment::SegmentHeader = std::ptr::null_mut();
        while !cur.is_null() {
            let seg = SegmentRef::from_raw(cur);
            // SAFETY: our live segment.
            let next = unsafe { seg.header().next_segment };
            for page in crate::segment::FIRST_PAGE..crate::segment::PAGES_PER_SEGMENT {
                // SAFETY: exclusive access.
                let d = unsafe { seg.desc(page) };
                if d.class == NO_CLASS {
                    continue;
                }
                d.in_bin = false;
                d.next_in_bin = std::ptr::null_mut();
                if d.used == 0 {
                    // SAFETY: no live blocks, not in any bin.
                    unsafe { seg.free_page(page) };
                    self.stats.pages_in_use -= 1;
                } else if d.has_space() {
                    let class = d.class as usize;
                    d.in_bin = true;
                    d.next_in_bin = self.bins[class];
                    self.bins[class] = d as *mut PageDesc;
                }
            }
            // SAFETY: exclusive access.
            if unsafe { seg.header().pages_in_use } == 0 {
                self.stats.segments -= 1;
                // SAFETY: no live blocks or bin links reference it (bins
                // were rebuilt above and skip this segment's pages).
                unsafe { seg.destroy() };
            } else {
                // SAFETY: exclusive access.
                unsafe { seg.header().next_segment = keep };
                keep = seg_raw(seg);
            }
            cur = next;
        }
        self.segments = keep;
    }

    /// True when no small or large allocation is live.
    pub fn is_quiescent(&self) -> bool {
        self.stats.live_blocks == 0 && self.stats.large_allocs == 0
    }
}

/// Raw pointer form of a segment reference (helper for intrusive lists).
fn seg_raw(seg: SegmentRef) -> *mut crate::segment::SegmentHeader {
    seg.base().as_ptr().cast()
}

/// # Safety
///
/// Exclusive access to a live segment.
unsafe fn seg_alloc_page(seg: SegmentRef) -> Option<usize> {
    // SAFETY: forwarded contract.
    unsafe { seg.alloc_page() }
}

// SAFETY: `allocate` returns blocks carved from freshly mapped pages (or
// dedicated mappings) that are aligned per `layout_to_class` routing and
// not aliased until freed.
unsafe impl Heap for SegregatedHeap {
    fn allocate(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout.size() == 0 {
            return Err(AllocError::ZeroSize);
        }
        match layout_to_class(layout.size(), layout.align()) {
            Some(class) => {
                let p = self.alloc_small(class.0 as usize)?;
                let size = class_to_size(class) as u64;
                self.stats.live_blocks += 1;
                self.stats.live_bytes += size;
                self.stats.total_allocs += 1;
                self.bump_peak();
                Ok(p)
            }
            None => self.alloc_large(layout),
        }
    }

    unsafe fn deallocate(&mut self, ptr: NonNull<u8>, layout: Layout) {
        match layout_to_class(layout.size(), layout.align()) {
            Some(class) => {
                // SAFETY: `ptr` came from `allocate` on this heap, so it is
                // interior to one of our live segments.
                let seg = unsafe { SegmentRef::of_ptr(ptr) };
                // SAFETY: as above; the descriptor's block size matches the
                // class the layout routed to.
                let (page, block) = unsafe { seg.locate(ptr) };
                // SAFETY: exclusive access.
                let d = unsafe { seg.desc(page) };
                debug_assert_eq!(d.class, class.0, "layout/class mismatch in deallocate");
                debug_assert!(d.used > 0);
                // Push onto the page-local free list, stored in the
                // segregated index array.
                // SAFETY: block < nblocks <= MAX_BLOCKS.
                unsafe {
                    *seg.index_array(page).add(block) = d.free_head;
                }
                d.free_head = block as u16;
                d.used -= 1;
                if !d.in_bin {
                    let class = d.class as usize;
                    d.in_bin = true;
                    d.next_in_bin = self.bins[class];
                    self.bins[class] = d as *mut PageDesc;
                }
                self.stats.live_blocks -= 1;
                self.stats.live_bytes -= class_to_size(class) as u64;
                self.stats.total_frees += 1;
            }
            None => {
                let len = round_to_os_page(layout.size());
                // SAFETY: large blocks are whole mappings of exactly `len`
                // bytes created in `alloc_large`.
                drop(unsafe { Mapping::from_raw(ptr, len) });
                self.stats.large_allocs -= 1;
                self.stats.large_bytes -= len as u64;
                self.stats.total_frees += 1;
            }
        }
    }

    fn stats(&self) -> HeapStats {
        self.stats
    }
}

impl Drop for SegregatedHeap {
    fn drop(&mut self) {
        // Unmap every segment. Outstanding small blocks become dangling —
        // the usual contract for dropping an allocator — and live large
        // mappings (if any) are the caller's to free via `deallocate`.
        let mut cur = self.segments;
        while !cur.is_null() {
            let seg = SegmentRef::from_raw(cur);
            // SAFETY: our live segment; we drop the whole list.
            let next = unsafe { seg.header().next_segment };
            // SAFETY: heap is being dropped; no further access.
            unsafe { seg.destroy() };
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> SegregatedHeap {
        SegregatedHeap::new(1)
    }

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut h = heap();
        let p = h.allocate(layout(100)).unwrap();
        // SAFETY: fresh 100-byte (class 112) block.
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0xAA, 100);
            assert_eq!(*p.as_ptr(), 0xAA);
            h.deallocate(p, layout(100));
        }
        assert_eq!(h.stats().live_blocks, 0);
        assert_eq!(h.stats().total_allocs, 1);
    }

    #[test]
    fn freed_block_is_reused() {
        let mut h = heap();
        let p1 = h.allocate(layout(64)).unwrap();
        // SAFETY: p1 just allocated.
        unsafe { h.deallocate(p1, layout(64)) };
        let p2 = h.allocate(layout(64)).unwrap();
        assert_eq!(p1, p2, "LIFO reuse of the freed block");
        // SAFETY: p2 live.
        unsafe { h.deallocate(p2, layout(64)) };
    }

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut h = heap();
        let n = 100;
        let sz = 48;
        let ptrs: Vec<NonNull<u8>> = (0..n).map(|_| h.allocate(layout(sz)).unwrap()).collect();
        // Write a distinct pattern into each, then verify.
        for (i, p) in ptrs.iter().enumerate() {
            // SAFETY: each block is sz bytes, live.
            unsafe { std::ptr::write_bytes(p.as_ptr(), i as u8, sz) };
        }
        for (i, p) in ptrs.iter().enumerate() {
            for off in [0, sz / 2, sz - 1] {
                // SAFETY: in-bounds read of live block.
                assert_eq!(unsafe { *p.as_ptr().add(off) }, i as u8);
            }
        }
        for p in ptrs {
            // SAFETY: blocks live until here.
            unsafe { h.deallocate(p, layout(sz)) };
        }
        assert!(h.is_quiescent());
    }

    #[test]
    fn blocks_are_aligned() {
        let mut h = heap();
        for &(size, align) in &[(1usize, 1usize), (24, 8), (100, 16), (100, 64), (5000, 256)] {
            let l = Layout::from_size_align(size, align).unwrap();
            let p = h.allocate(l).unwrap();
            assert_eq!(
                p.as_ptr() as usize % align,
                0,
                "size {size} align {align} misaligned"
            );
            // SAFETY: p live.
            unsafe { h.deallocate(p, l) };
        }
    }

    #[test]
    fn large_allocation_roundtrip() {
        let mut h = heap();
        let l = layout(1 << 20);
        let p = h.allocate(l).unwrap();
        // SAFETY: 1 MiB mapping.
        unsafe {
            *p.as_ptr() = 1;
            *p.as_ptr().add((1 << 20) - 1) = 2;
        }
        assert_eq!(h.stats().large_allocs, 1);
        // SAFETY: p live.
        unsafe { h.deallocate(p, l) };
        assert_eq!(h.stats().large_allocs, 0);
        assert_eq!(h.stats().segments, 0, "large path must not map segments");
    }

    #[test]
    fn many_sizes_stress() {
        let mut h = heap();
        let mut live: Vec<(NonNull<u8>, Layout)> = Vec::new();
        for i in 0..5000usize {
            let size = 1 + (i * 37) % 9000;
            let l = layout(size);
            let p = h.allocate(l).unwrap();
            // SAFETY: fresh block of at least `size` bytes.
            unsafe { std::ptr::write_bytes(p.as_ptr(), (i & 0xff) as u8, size.min(64)) };
            live.push((p, l));
            if i % 3 == 0 {
                let (q, ql) = live.swap_remove(i % live.len());
                // SAFETY: q tracked as live.
                unsafe { h.deallocate(q, ql) };
            }
        }
        let expect_live = live.len() as u64;
        assert_eq!(h.stats().live_total(), expect_live);
        for (p, l) in live {
            // SAFETY: remaining live blocks.
            unsafe { h.deallocate(p, l) };
        }
        assert!(h.is_quiescent());
    }

    #[test]
    fn release_empty_reclaims_segments() {
        let mut h = heap();
        let ptrs: Vec<_> = (0..1000)
            .map(|_| h.allocate(layout(4096)).unwrap())
            .collect();
        assert!(h.stats().segments >= 1);
        for p in ptrs {
            // SAFETY: live blocks.
            unsafe { h.deallocate(p, layout(4096)) };
        }
        h.release_empty();
        assert_eq!(h.stats().segments, 0);
        assert_eq!(h.stats().pages_in_use, 0);
        // Heap remains usable afterwards.
        let p = h.allocate(layout(64)).unwrap();
        // SAFETY: live block.
        unsafe { h.deallocate(p, layout(64)) };
    }

    #[test]
    fn zero_size_rejected() {
        let mut h = heap();
        assert_eq!(
            h.allocate(Layout::from_size_align(0, 1).unwrap()),
            Err(AllocError::ZeroSize)
        );
    }

    #[test]
    fn stats_track_peak() {
        let mut h = heap();
        let a = h.allocate(layout(1024)).unwrap();
        let b = h.allocate(layout(1024)).unwrap();
        // SAFETY: a and b live.
        unsafe {
            h.deallocate(a, layout(1024));
            h.deallocate(b, layout(1024));
        }
        assert_eq!(h.stats().peak_live_bytes, 2048);
        assert_eq!(h.stats().live_bytes, 0);
    }

    #[test]
    fn batch_allocates_distinct_writable_blocks() {
        let mut h = heap();
        let class = crate::classes::size_to_class(64).unwrap();
        let mut blocks = Vec::new();
        let n = h
            .allocate_batch(class, 300, &mut |p| blocks.push(p))
            .unwrap();
        assert_eq!(n, 300);
        assert_eq!(h.stats().live_blocks, 300);
        assert_eq!(h.stats().total_allocs, 300);
        let distinct: std::collections::HashSet<_> =
            blocks.iter().map(|p| p.as_ptr() as usize).collect();
        assert_eq!(distinct.len(), 300, "batch must not alias blocks");
        for (i, p) in blocks.iter().enumerate() {
            // SAFETY: live 64-byte block.
            unsafe { std::ptr::write_bytes(p.as_ptr(), i as u8, 64) };
        }
        for (i, p) in blocks.iter().enumerate() {
            // SAFETY: in-bounds read of live block.
            assert_eq!(unsafe { *p.as_ptr().add(63) }, i as u8);
        }
        // SAFETY: all blocks live, freed exactly once.
        unsafe { h.deallocate_batch(blocks) };
        assert!(h.is_quiescent());
        assert_eq!(h.stats().total_frees, 300);
    }

    #[test]
    fn batch_alloc_matches_single_alloc_accounting() {
        let mut single = heap();
        let mut batched = heap();
        let class = crate::classes::size_to_class(100).unwrap();
        let l = Layout::from_size_align(class_to_size(class), 8).unwrap();
        let singles: Vec<_> = (0..50).map(|_| single.allocate(l).unwrap()).collect();
        let mut batch = Vec::new();
        batched
            .allocate_batch(class, 50, &mut |p| batch.push(p))
            .unwrap();
        assert_eq!(single.stats().live_bytes, batched.stats().live_bytes);
        assert_eq!(
            single.stats().peak_live_bytes,
            batched.stats().peak_live_bytes
        );
        for p in singles {
            // SAFETY: live blocks.
            unsafe { single.deallocate(p, l) };
        }
        // SAFETY: live blocks from the batch.
        unsafe { batched.deallocate_batch(batch) };
        assert_eq!(single.stats(), batched.stats());
    }

    #[test]
    fn page_exhaustion_spills_to_new_page() {
        let mut h = heap();
        // 8192-byte blocks: 8 per page; allocate enough for several pages.
        let ptrs: Vec<_> = (0..40).map(|_| h.allocate(layout(8192)).unwrap()).collect();
        assert!(h.stats().pages_in_use >= 5);
        let distinct: std::collections::HashSet<_> =
            ptrs.iter().map(|p| p.as_ptr() as usize).collect();
        assert_eq!(distinct.len(), 40);
        for p in ptrs {
            // SAFETY: live blocks.
            unsafe { h.deallocate(p, layout(8192)) };
        }
    }
}
