//! Segments: 4 MiB aligned regions carved into 64 KiB pages, with all
//! metadata self-hosted in a reserved region at the segment's start.
//!
//! This is the paper's *segregated layout* (Figure 2) made concrete: page
//! descriptors and the per-page free lists — stored as 16-bit block
//! indices, not 8-byte in-block pointers — live in a metadata area whose
//! cache lines are never shared with user blocks. A heap that runs on a
//! dedicated core therefore keeps every metadata line private to that core.
//!
//! Address arithmetic relies on the 4 MiB alignment: `ptr & !(SEGMENT_SIZE
//! - 1)` recovers the segment header from any interior pointer, which is
//! how `free(ptr)` finds its bookkeeping without touching the block.

use std::ptr::NonNull;
use std::sync::atomic::AtomicPtr;

use crate::error::AllocError;
use crate::sys::Mapping;

/// Segment size and alignment (4 MiB).
pub const SEGMENT_SIZE: usize = 4 * 1024 * 1024;

/// Allocator page size (64 KiB) — the "UMA page" of §2.1, deliberately
/// larger than the OS page.
pub const PAGE_SIZE: usize = 64 * 1024;

/// Pages per segment.
pub const PAGES_PER_SEGMENT: usize = SEGMENT_SIZE / PAGE_SIZE;

/// Maximum blocks in a page (minimum block size 16).
pub const MAX_BLOCKS: usize = PAGE_SIZE / 16;

/// Sentinel for "no block" in 16-bit free lists.
pub const NO_BLOCK: u16 = u16::MAX;

/// Sentinel for "no class assigned" in page descriptors.
pub const NO_CLASS: u16 = u16::MAX;

const MAGIC: u64 = 0x4e47_4d5f_5345_4721; // "NGM_SEG!"

/// Byte offset of the page-descriptor array within a segment.
const DESC_OFFSET: usize = 4096;

/// Byte offset of the per-page 16-bit next-index arrays.
const INDEX_OFFSET: usize = DESC_OFFSET + PAGES_PER_SEGMENT * 64;

/// Bytes occupied by all metadata at the head of a segment.
const META_BYTES: usize = INDEX_OFFSET + PAGES_PER_SEGMENT * MAX_BLOCKS * 2;

/// Index of the first page usable for blocks (pages below this hold
/// metadata).
pub const FIRST_PAGE: usize = META_BYTES.div_ceil(PAGE_SIZE);

/// Usable pages per segment.
pub const USABLE_PAGES: usize = PAGES_PER_SEGMENT - FIRST_PAGE;

/// Header at the base of every segment.
#[repr(C)]
pub struct SegmentHeader {
    magic: u64,
    /// Identifier of the owning heap (diagnostics / sharded routing).
    pub owner_id: u64,
    /// Intrusive list of the owning heap's segments.
    pub next_segment: *mut SegmentHeader,
    /// Context pointer the owning heap may install (e.g. the sharded
    /// heap's remote-free queue). Null for single-owner heaps.
    pub owner_ctx: AtomicPtr<u8>,
    /// Number of pages handed out and not yet returned.
    pub pages_in_use: u16,
    /// Next never-used page (bump allocation of pages).
    next_unused_page: u16,
    /// Stack of returned page indices.
    free_page_top: u16,
    free_page_stack: [u16; PAGES_PER_SEGMENT],
}

/// Descriptor for one 64 KiB page. Kept to 64 bytes so the descriptor
/// array stays dense.
#[repr(C)]
pub struct PageDesc {
    /// Size class this page currently serves, or [`NO_CLASS`].
    pub class: u16,
    /// Block size in bytes (copied from the class table).
    pub block_size: u32,
    /// Total blocks this page holds at its block size.
    pub nblocks: u16,
    /// Live (allocated) blocks.
    pub used: u16,
    /// Next never-allocated block index (lazy free-list initialization).
    pub bump: u16,
    /// Head of the page-local free list ([`NO_BLOCK`] if empty).
    pub free_head: u16,
    /// This page's index within its segment.
    pub page_index: u16,
    /// Whether the page is currently linked into a heap bin.
    pub in_bin: bool,
    /// Next page in the heap's bin list (intrusive).
    pub next_in_bin: *mut PageDesc,
}

const _: () = assert!(std::mem::size_of::<PageDesc>() <= 64);
const _: () = assert!(std::mem::size_of::<SegmentHeader>() <= DESC_OFFSET);
const _: () = assert!(FIRST_PAGE < PAGES_PER_SEGMENT);

impl PageDesc {
    /// Blocks currently available without touching a new page.
    pub fn free_blocks(&self) -> usize {
        usize::from(self.nblocks) - usize::from(self.used)
    }

    /// Whether every block is free.
    pub fn is_unused(&self) -> bool {
        self.used == 0
    }

    /// Whether allocation from this page can succeed.
    pub fn has_space(&self) -> bool {
        self.free_head != NO_BLOCK || self.bump < self.nblocks
    }
}

/// A non-owning, copyable reference to a segment.
///
/// All accessor methods are `unsafe` free functions over raw pointers in
/// spirit; they are grouped here behind `unsafe fn`s whose contract is that
/// the segment is alive (mapped, initialized by [`SegmentRef::create`], not
/// yet destroyed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef(NonNull<SegmentHeader>);

impl SegmentRef {
    /// Maps and initializes a fresh segment.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from the OS.
    pub fn create(owner_id: u64) -> Result<Self, AllocError> {
        let mapping = Mapping::new_aligned(SEGMENT_SIZE, SEGMENT_SIZE)?;
        let (base, _len) = mapping.into_raw();
        let hdr = base.as_ptr().cast::<SegmentHeader>();
        // SAFETY: `base` points to SEGMENT_SIZE zeroed writable bytes with
        // suitable alignment; we initialize the header in place.
        unsafe {
            hdr.write(SegmentHeader {
                magic: MAGIC,
                owner_id,
                next_segment: std::ptr::null_mut(),
                owner_ctx: AtomicPtr::new(std::ptr::null_mut()),
                pages_in_use: 0,
                next_unused_page: FIRST_PAGE as u16,
                free_page_top: 0,
                free_page_stack: [0; PAGES_PER_SEGMENT],
            });
        }
        let seg = SegmentRef(NonNull::new(hdr).expect("mapping base is non-null"));
        // Initialize descriptors.
        for i in 0..PAGES_PER_SEGMENT {
            // SAFETY: descriptor slots lie inside the zeroed metadata area.
            unsafe {
                seg.desc_ptr(i).write(PageDesc {
                    class: NO_CLASS,
                    block_size: 0,
                    nblocks: 0,
                    used: 0,
                    bump: 0,
                    free_head: NO_BLOCK,
                    page_index: i as u16,
                    in_bin: false,
                    next_in_bin: std::ptr::null_mut(),
                });
            }
        }
        Ok(seg)
    }

    /// Unmaps the segment.
    ///
    /// # Safety
    ///
    /// No pointers into the segment (blocks, descriptors) may be used
    /// afterwards, and `self` must not be used again.
    pub unsafe fn destroy(self) {
        let base = NonNull::new(self.0.as_ptr().cast::<u8>()).expect("segment base non-null");
        // SAFETY: created via Mapping::new_aligned(SEGMENT_SIZE, ...) and
        // ownership was transferred to this SegmentRef at creation.
        drop(unsafe { Mapping::from_raw(base, SEGMENT_SIZE) });
    }

    /// Recovers the segment containing `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must point into a live segment created by [`SegmentRef::create`].
    pub unsafe fn of_ptr(ptr: NonNull<u8>) -> Self {
        let base = (ptr.as_ptr() as usize) & !(SEGMENT_SIZE - 1);
        let hdr = base as *mut SegmentHeader;
        // SAFETY: caller guarantees `ptr` is interior to a live segment, so
        // `base` is its mapped, initialized header.
        debug_assert_eq!(unsafe { (*hdr).magic }, MAGIC, "bad segment magic");
        SegmentRef(NonNull::new(hdr).expect("masked base non-null for interior pointer"))
    }

    /// The segment's base address.
    pub fn base(self) -> NonNull<u8> {
        self.0.cast()
    }

    /// Wraps a raw header pointer (e.g. from an intrusive segment list).
    ///
    /// # Panics
    ///
    /// Panics if `p` is null.
    pub(crate) fn from_raw(p: *mut SegmentHeader) -> Self {
        SegmentRef(NonNull::new(p).expect("segment pointer must be non-null"))
    }

    /// The header, mutably.
    ///
    /// # Safety
    ///
    /// Segment must be alive; caller must hold exclusive access to header
    /// fields it mutates (single-owner heaps get this structurally).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn header<'a>(self) -> &'a mut SegmentHeader {
        // SAFETY: live segment per contract.
        unsafe { &mut *self.0.as_ptr() }
    }

    fn desc_ptr(self, page: usize) -> *mut PageDesc {
        debug_assert!(page < PAGES_PER_SEGMENT);
        // Descriptor array begins DESC_OFFSET bytes into the segment.
        let base = self.0.as_ptr() as usize + DESC_OFFSET;
        (base + page * 64) as *mut PageDesc
    }

    /// The descriptor of page `page`, mutably.
    ///
    /// # Safety
    ///
    /// Segment must be alive and the caller must have exclusive access to
    /// this page's metadata.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn desc<'a>(self, page: usize) -> &'a mut PageDesc {
        // SAFETY: in-bounds descriptor in a live segment per contract.
        unsafe { &mut *self.desc_ptr(page) }
    }

    /// Base address of page `page`'s data area.
    pub fn page_base(self, page: usize) -> NonNull<u8> {
        debug_assert!((FIRST_PAGE..PAGES_PER_SEGMENT).contains(&page));
        let addr = self.0.as_ptr() as usize + page * PAGE_SIZE;
        NonNull::new(addr as *mut u8).expect("page base non-null")
    }

    /// The 16-bit next-index array for page `page` (the segregated free
    /// list storage).
    ///
    /// # Safety
    ///
    /// Segment must be alive; caller must have exclusive access to this
    /// page's metadata.
    pub unsafe fn index_array(self, page: usize) -> *mut u16 {
        debug_assert!(page < PAGES_PER_SEGMENT);
        let base = self.0.as_ptr() as usize + INDEX_OFFSET;
        (base + page * MAX_BLOCKS * 2) as *mut u16
    }

    /// Pops a fresh page index, if any remain.
    ///
    /// # Safety
    ///
    /// Exclusive access to the segment header.
    pub unsafe fn alloc_page(self) -> Option<usize> {
        // SAFETY: per contract.
        let hdr = unsafe { self.header() };
        let idx = if hdr.free_page_top > 0 {
            hdr.free_page_top -= 1;
            hdr.free_page_stack[hdr.free_page_top as usize] as usize
        } else if (hdr.next_unused_page as usize) < PAGES_PER_SEGMENT {
            let i = hdr.next_unused_page as usize;
            hdr.next_unused_page += 1;
            i
        } else {
            return None;
        };
        hdr.pages_in_use += 1;
        Some(idx)
    }

    /// Returns page `page` to the segment's free stack, resetting its
    /// descriptor.
    ///
    /// # Safety
    ///
    /// Exclusive access; the page must have no live blocks and must not be
    /// linked in any bin.
    pub unsafe fn free_page(self, page: usize) {
        // SAFETY: per contract.
        let d = unsafe { self.desc(page) };
        debug_assert_eq!(d.used, 0);
        debug_assert!(!d.in_bin);
        d.class = NO_CLASS;
        d.block_size = 0;
        d.nblocks = 0;
        d.bump = 0;
        d.free_head = NO_BLOCK;
        d.next_in_bin = std::ptr::null_mut();
        // SAFETY: per contract.
        let hdr = unsafe { self.header() };
        hdr.free_page_stack[hdr.free_page_top as usize] = page as u16;
        hdr.free_page_top += 1;
        hdr.pages_in_use -= 1;
    }

    /// Computes `(page index, block index)` for an interior pointer, given
    /// the page's block size from its descriptor.
    ///
    /// # Safety
    ///
    /// `ptr` must point to the start of a block inside this segment.
    pub unsafe fn locate(self, ptr: NonNull<u8>) -> (usize, usize) {
        let off = ptr.as_ptr() as usize - self.0.as_ptr() as usize;
        let page = off / PAGE_SIZE;
        debug_assert!((FIRST_PAGE..PAGES_PER_SEGMENT).contains(&page));
        // SAFETY: page in range, segment alive per contract.
        let d = unsafe { self.desc(page) };
        debug_assert!(d.block_size > 0, "pointer into unassigned page");
        let block = (off - page * PAGE_SIZE) / d.block_size as usize;
        (page, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the test
    fn geometry_constants_consistent() {
        assert_eq!(PAGES_PER_SEGMENT, 64);
        assert_eq!(MAX_BLOCKS, 4096);
        // Metadata must fit below the first usable page.
        assert!(META_BYTES <= FIRST_PAGE * PAGE_SIZE);
        assert!(USABLE_PAGES >= 50, "metadata overhead too high");
    }

    #[test]
    fn create_and_destroy() {
        let seg = SegmentRef::create(7).unwrap();
        // SAFETY: fresh segment, single thread.
        unsafe {
            assert_eq!(seg.header().owner_id, 7);
            assert_eq!(seg.header().pages_in_use, 0);
            seg.destroy();
        }
    }

    #[test]
    fn segment_base_is_aligned() {
        let seg = SegmentRef::create(0).unwrap();
        assert_eq!(seg.base().as_ptr() as usize % SEGMENT_SIZE, 0);
        // SAFETY: no outstanding pointers.
        unsafe { seg.destroy() };
    }

    #[test]
    fn of_ptr_recovers_segment() {
        let seg = SegmentRef::create(0).unwrap();
        let p = seg.page_base(FIRST_PAGE);
        // SAFETY: p is interior to the live segment.
        let found = unsafe { SegmentRef::of_ptr(p) };
        assert_eq!(found, seg);
        // An address deep inside also works.
        let q = NonNull::new(unsafe { p.as_ptr().add(12345) }).unwrap();
        // SAFETY: q still interior.
        assert_eq!(unsafe { SegmentRef::of_ptr(q) }, seg);
        // SAFETY: done with all pointers.
        unsafe { seg.destroy() };
    }

    #[test]
    fn page_allocation_bumps_then_recycles() {
        let seg = SegmentRef::create(0).unwrap();
        // SAFETY: exclusive access throughout.
        unsafe {
            let a = seg.alloc_page().unwrap();
            let b = seg.alloc_page().unwrap();
            assert_eq!(a, FIRST_PAGE);
            assert_eq!(b, FIRST_PAGE + 1);
            assert_eq!(seg.header().pages_in_use, 2);
            seg.free_page(a);
            assert_eq!(seg.header().pages_in_use, 1);
            let c = seg.alloc_page().unwrap();
            assert_eq!(c, a, "freed page is reused first");
            seg.destroy();
        }
    }

    #[test]
    fn page_exhaustion_returns_none() {
        let seg = SegmentRef::create(0).unwrap();
        // SAFETY: exclusive access.
        unsafe {
            for _ in 0..USABLE_PAGES {
                assert!(seg.alloc_page().is_some());
            }
            assert!(seg.alloc_page().is_none());
            seg.destroy();
        }
    }

    #[test]
    fn locate_maps_blocks_back() {
        let seg = SegmentRef::create(0).unwrap();
        // SAFETY: exclusive access.
        unsafe {
            let page = seg.alloc_page().unwrap();
            let d = seg.desc(page);
            d.class = 3;
            d.block_size = 64;
            d.nblocks = (PAGE_SIZE / 64) as u16;
            let base = seg.page_base(page);
            for blk in [0usize, 1, 17, 1023] {
                let p = NonNull::new(base.as_ptr().add(blk * 64)).unwrap();
                assert_eq!(seg.locate(p), (page, blk));
            }
            seg.destroy();
        }
    }

    #[test]
    fn descriptors_live_below_first_page() {
        let seg = SegmentRef::create(0).unwrap();
        let desc_addr = seg.desc_ptr(PAGES_PER_SEGMENT - 1) as usize;
        let first_data = seg.base().as_ptr() as usize + FIRST_PAGE * PAGE_SIZE;
        assert!(desc_addr + 64 <= first_data);
        // SAFETY: done.
        unsafe { seg.destroy() };
    }

    #[test]
    fn index_arrays_live_below_first_page() {
        let seg = SegmentRef::create(0).unwrap();
        // SAFETY: live segment.
        let arr = unsafe { seg.index_array(PAGES_PER_SEGMENT - 1) } as usize;
        let first_data = seg.base().as_ptr() as usize + FIRST_PAGE * PAGE_SIZE;
        assert!(arr + MAX_BLOCKS * 2 <= first_data);
        // SAFETY: done.
        unsafe { seg.destroy() };
    }
}
