//! Real-memory allocator substrate for the NextGen-Malloc reproduction.
//!
//! Everything in this crate manages actual `mmap`ed memory with metadata
//! hosted inside the managed segments themselves — no dependence on Rust's
//! global allocator — so the heaps here can back a `GlobalAlloc`
//! implementation (see the `ngm-core` crate).
//!
//! Two metadata layouts from the paper's Figure 2 are implemented:
//!
//! * [`SegregatedHeap`] — free-block bookkeeping lives in a per-segment
//!   metadata region as 16-bit block indices ("instead of an 8-byte
//!   pointer, a smaller index (16-bit for example) can be used"),
//!   decoupled from user data. This is the layout NextGen-Malloc needs so
//!   the service core's metadata never shares lines with user data.
//! * [`AggregatedHeap`] — the free list is threaded through the first
//!   8 bytes of each free block (PTMalloc2/Mimalloc style), interspersed
//!   with user data.
//!
//! On top of those single-owner heaps sit two multi-threaded compositions
//! representing "current UMAs":
//!
//! * [`LockedHeap`] — one global lock (Glibc/PTMalloc2's arena discipline).
//! * [`ShardedHeap`] — per-thread heaps plus atomic remote-free queues
//!   (TCMalloc/Mimalloc's thread-local caching with cross-thread frees),
//!   i.e. exactly the atomics §3.1.3 proposes to remove.

#![warn(missing_docs)]

pub mod agg_heap;
pub mod classes;
pub mod error;
pub mod fallback;
pub mod locked;
pub mod seg_heap;
pub mod segment;
pub mod sharded;
pub mod stats;
pub mod sys;

pub use agg_heap::AggregatedHeap;
pub use classes::{class_to_size, size_to_class, SizeClass, NUM_CLASSES, SMALL_MAX};
pub use error::AllocError;
pub use fallback::FallbackHeap;
pub use locked::LockedHeap;
pub use seg_heap::SegregatedHeap;
pub use sharded::ShardedHeap;
pub use stats::HeapStats;

use std::alloc::Layout;
use std::ptr::NonNull;

/// Reads the `owner_id` stamped into the segment containing `ptr`.
///
/// This is the sharded service tier's routing primitive: each shard's
/// [`SegregatedHeap`] is created with a distinct owner id, the id is
/// written into every segment header at segment-creation time and never
/// mutated afterwards, so a plain (non-atomic) read here is race-free and
/// the answer for a given address cannot change while the block is live.
/// Frees therefore route to the allocating shard by address alone — a
/// pure function of the address, stable across any client-side rebalance
/// of *allocation* traffic.
///
/// # Safety
///
/// `ptr` must point into a live segment created by a [`SegregatedHeap`]
/// (i.e. be a small-class block handed out by one).
pub unsafe fn owner_of_small_ptr(ptr: NonNull<u8>) -> u64 {
    // SAFETY: forwarded contract — `ptr` is interior to a live segment.
    unsafe { segment::SegmentRef::of_ptr(ptr).header() }.owner_id
}

/// A single-owner heap: exclusive access replaces synchronization.
///
/// # Safety
///
/// Implementations must return pointers that are valid for reads and writes
/// of `layout.size()` bytes, aligned to `layout.align()`, and that do not
/// alias any other live allocation until deallocated.
pub unsafe trait Heap {
    /// Allocates a block for `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the OS refuses memory or the layout is
    /// unsupported.
    fn allocate(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError>;

    /// Deallocates a block previously returned by [`Heap::allocate`] on
    /// this heap.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `allocate(layout)` on this same heap instance
    /// and must not be used after this call.
    unsafe fn deallocate(&mut self, ptr: NonNull<u8>, layout: Layout);

    /// Point-in-time usage statistics.
    fn stats(&self) -> HeapStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_of_small_ptr_routes_by_allocating_heap() {
        let mut shard_a = SegregatedHeap::new(0xA);
        let mut shard_b = SegregatedHeap::new(0xB);
        let layout = Layout::from_size_align(48, 8).unwrap();
        let mut blocks = Vec::new();
        for i in 0..64 {
            let (heap, want) = if i % 2 == 0 {
                (&mut shard_a, 0xA)
            } else {
                (&mut shard_b, 0xB)
            };
            let p = heap.allocate(layout).unwrap();
            blocks.push((p, want));
        }
        // Every block routes back to the heap that allocated it, purely
        // by address — interleaving doesn't confuse it.
        for &(p, want) in &blocks {
            assert_eq!(unsafe { owner_of_small_ptr(p) }, want);
        }
        for (i, &(p, _)) in blocks.iter().enumerate() {
            let heap = if i % 2 == 0 {
                &mut shard_a
            } else {
                &mut shard_b
            };
            unsafe { heap.deallocate(p, layout) };
        }
    }
}
