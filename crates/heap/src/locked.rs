//! A global-lock wrapper: the PTMalloc2 discipline.
//!
//! §2.3: "Software mutex locks are used to control access to metadata to
//! process requests from different cores. The cost of using such software
//! locks is high since cross-core communication is involved." This wrapper
//! makes any single-owner heap shareable the way Glibc's arena lock does —
//! and exhibits exactly that serialization cost under contention.

use std::alloc::Layout;
use std::ptr::NonNull;

use parking_lot::Mutex;

use crate::error::AllocError;
use crate::stats::HeapStats;
use crate::Heap;

/// A heap behind one mutex, usable from any thread by shared reference.
pub struct LockedHeap<H: Heap> {
    inner: Mutex<H>,
    contended: std::sync::atomic::AtomicU64,
}

impl<H: Heap> LockedHeap<H> {
    /// Wraps `heap`.
    pub fn new(heap: H) -> Self {
        LockedHeap {
            inner: Mutex::new(heap),
            contended: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Allocates under the lock.
    ///
    /// # Errors
    ///
    /// Propagates the inner heap's errors.
    pub fn allocate(&self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        let mut guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                self.contended
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.lock()
            }
        };
        guard.allocate(layout)
    }

    /// Deallocates under the lock.
    ///
    /// # Safety
    ///
    /// Same contract as [`Heap::deallocate`]: `ptr` must come from
    /// `allocate(layout)` on this wrapper.
    pub unsafe fn deallocate(&self, ptr: NonNull<u8>, layout: Layout) {
        let mut guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                self.contended
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.lock()
            }
        };
        // SAFETY: forwarded caller contract.
        unsafe { guard.deallocate(ptr, layout) }
    }

    /// Inner heap statistics (taken under the lock).
    pub fn stats(&self) -> HeapStats {
        self.inner.lock().stats()
    }

    /// How many lock acquisitions found the lock already held.
    pub fn contention_events(&self) -> u64 {
        self.contended.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs `f` with exclusive access to the inner heap (housekeeping).
    pub fn with<R>(&self, f: impl FnOnce(&mut H) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Unwraps the inner heap.
    pub fn into_inner(self) -> H {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg_heap::SegregatedHeap;
    use std::sync::Arc;

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn shared_allocation_across_threads() {
        let h = Arc::new(LockedHeap::new(SegregatedHeap::new(9)));
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..500usize {
                    let size = 16 + (t * 131 + i * 17) % 2000;
                    let l = layout(size);
                    let p = h.allocate(l).unwrap();
                    // SAFETY: fresh block of >= size bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), t as u8, size.min(16)) };
                    mine.push((p, l));
                }
                for (p, l) in mine {
                    // SAFETY: blocks allocated above, freed exactly once.
                    unsafe { h.deallocate(p, l) };
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.stats().live_blocks, 0);
        assert_eq!(h.stats().total_allocs, 2000);
    }

    #[test]
    fn cross_thread_free_is_legal_under_lock() {
        // xmalloc's pattern: one thread allocates, another frees.
        let h = Arc::new(LockedHeap::new(SegregatedHeap::new(9)));
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Layout)>();
        let hf = Arc::clone(&h);
        let freer = std::thread::spawn(move || {
            for (addr, l) in rx {
                let p = NonNull::new(addr as *mut u8).unwrap();
                // SAFETY: the allocating thread transferred ownership of
                // the live block through the channel.
                unsafe { hf.deallocate(p, l) };
            }
        });
        for i in 0..1000usize {
            let l = layout(16 + i % 512);
            let p = h.allocate(l).unwrap();
            tx.send((p.as_ptr() as usize, l)).unwrap();
        }
        drop(tx);
        freer.join().unwrap();
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn with_gives_housekeeping_access() {
        let h = LockedHeap::new(SegregatedHeap::new(9));
        let p = h.allocate(layout(64)).unwrap();
        // SAFETY: freed exactly once.
        unsafe { h.deallocate(p, layout(64)) };
        h.with(|inner| inner.release_empty());
        assert_eq!(h.stats().segments, 0);
    }
}
