//! Heap usage statistics.

/// Point-in-time usage counters for a heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Live small blocks.
    pub live_blocks: u64,
    /// Bytes in live small blocks (at class granularity).
    pub live_bytes: u64,
    /// Segments currently mapped.
    pub segments: u64,
    /// Pages handed out to size classes.
    pub pages_in_use: u64,
    /// Live large (direct-mapped) allocations.
    pub large_allocs: u64,
    /// Bytes in live large allocations.
    pub large_bytes: u64,
    /// Allocations ever served.
    pub total_allocs: u64,
    /// Deallocations ever served.
    pub total_frees: u64,
    /// High-water mark of `live_bytes + large_bytes`.
    pub peak_live_bytes: u64,
}

impl HeapStats {
    /// Bytes of address space committed for small blocks.
    pub fn committed_bytes(&self) -> u64 {
        self.segments * crate::segment::SEGMENT_SIZE as u64
    }

    /// External fragmentation estimate: fraction of committed segment
    /// space not occupied by live blocks, in `[0, 1]`.
    ///
    /// Includes metadata overhead, so even a perfectly packed heap reports
    /// a nonzero floor — which is honest: the paper's Figure 2 trade-off is
    /// partly about how much space the metadata itself costs.
    ///
    /// Large (direct-mapped) bytes count toward occupancy: during a
    /// segment release the live accounting can transiently exceed the
    /// committed total, so the result is clamped rather than letting the
    /// estimate go negative.
    pub fn fragmentation(&self) -> f64 {
        let committed = self.committed_bytes();
        if committed == 0 {
            return 0.0;
        }
        let occupied = self.live_bytes.saturating_add(self.large_bytes);
        (1.0 - occupied as f64 / committed as f64).clamp(0.0, 1.0)
    }

    /// Live allocation count, small plus large.
    pub fn live_total(&self) -> u64 {
        self.live_blocks + self.large_allocs
    }

    /// Folds another heap's counters into this one, presenting a set of
    /// shard-owned heaps as a single logical heap. All fields sum;
    /// `peak_live_bytes` becomes the sum of per-shard peaks, an upper
    /// bound on the true combined peak (the shards did not necessarily
    /// peak at the same instant).
    pub fn absorb(&mut self, other: &HeapStats) {
        self.live_blocks += other.live_blocks;
        self.live_bytes += other.live_bytes;
        self.segments += other.segments;
        self.pages_in_use += other.pages_in_use;
        self.large_allocs += other.large_allocs;
        self.large_bytes += other.large_bytes;
        self.total_allocs += other.total_allocs;
        self.total_frees += other.total_frees;
        self.peak_live_bytes += other.peak_live_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_of_empty_heap_is_zero() {
        assert_eq!(HeapStats::default().fragmentation(), 0.0);
    }

    #[test]
    fn fragmentation_counts_unused_space() {
        let s = HeapStats {
            segments: 1,
            live_bytes: crate::segment::SEGMENT_SIZE as u64 / 2,
            ..Default::default()
        };
        assert!((s.fragmentation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fragmentation_is_clamped_to_unit_interval() {
        // Mid-release, live accounting can transiently exceed committed
        // space (segment decommitted before its blocks are debited); the
        // estimate must clamp instead of going negative.
        let s = HeapStats {
            segments: 1,
            live_bytes: crate::segment::SEGMENT_SIZE as u64,
            large_bytes: crate::segment::SEGMENT_SIZE as u64,
            ..Default::default()
        };
        let f = s.fragmentation();
        assert!((0.0..=1.0).contains(&f), "fragmentation {f} out of range");
        assert_eq!(f, 0.0);

        // And the degenerate all-committed-no-live end stays at 1.0.
        let s = HeapStats {
            segments: 2,
            ..Default::default()
        };
        assert_eq!(s.fragmentation(), 1.0);
    }

    #[test]
    fn absorb_sums_every_field() {
        let mut a = HeapStats {
            live_blocks: 1,
            live_bytes: 10,
            segments: 1,
            pages_in_use: 2,
            large_allocs: 1,
            large_bytes: 100,
            total_allocs: 5,
            total_frees: 4,
            peak_live_bytes: 110,
        };
        let b = HeapStats {
            live_blocks: 2,
            live_bytes: 20,
            segments: 3,
            pages_in_use: 4,
            large_allocs: 5,
            large_bytes: 600,
            total_allocs: 70,
            total_frees: 65,
            peak_live_bytes: 640,
        };
        a.absorb(&b);
        let want = HeapStats {
            live_blocks: 3,
            live_bytes: 30,
            segments: 4,
            pages_in_use: 6,
            large_allocs: 6,
            large_bytes: 700,
            total_allocs: 75,
            total_frees: 69,
            // Sum of per-shard peaks — an upper bound, not the true
            // combined peak.
            peak_live_bytes: 750,
        };
        assert_eq!(a, want);
    }

    #[test]
    fn live_total_sums_small_and_large() {
        let s = HeapStats {
            live_blocks: 3,
            large_allocs: 2,
            ..Default::default()
        };
        assert_eq!(s.live_total(), 5);
    }
}
