//! Heap usage statistics.

/// Point-in-time usage counters for a heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Live small blocks.
    pub live_blocks: u64,
    /// Bytes in live small blocks (at class granularity).
    pub live_bytes: u64,
    /// Segments currently mapped.
    pub segments: u64,
    /// Pages handed out to size classes.
    pub pages_in_use: u64,
    /// Live large (direct-mapped) allocations.
    pub large_allocs: u64,
    /// Bytes in live large allocations.
    pub large_bytes: u64,
    /// Allocations ever served.
    pub total_allocs: u64,
    /// Deallocations ever served.
    pub total_frees: u64,
    /// High-water mark of `live_bytes + large_bytes`.
    pub peak_live_bytes: u64,
}

impl HeapStats {
    /// Bytes of address space committed for small blocks.
    pub fn committed_bytes(&self) -> u64 {
        self.segments * crate::segment::SEGMENT_SIZE as u64
    }

    /// External fragmentation estimate: fraction of committed segment
    /// space not occupied by live blocks, in `[0, 1]`.
    ///
    /// Includes metadata overhead, so even a perfectly packed heap reports
    /// a nonzero floor — which is honest: the paper's Figure 2 trade-off is
    /// partly about how much space the metadata itself costs.
    pub fn fragmentation(&self) -> f64 {
        let committed = self.committed_bytes();
        if committed == 0 {
            0.0
        } else {
            1.0 - (self.live_bytes as f64 / committed as f64).min(1.0)
        }
    }

    /// Live allocation count, small plus large.
    pub fn live_total(&self) -> u64 {
        self.live_blocks + self.large_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_of_empty_heap_is_zero() {
        assert_eq!(HeapStats::default().fragmentation(), 0.0);
    }

    #[test]
    fn fragmentation_counts_unused_space() {
        let s = HeapStats {
            segments: 1,
            live_bytes: crate::segment::SEGMENT_SIZE as u64 / 2,
            ..Default::default()
        };
        assert!((s.fragmentation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn live_total_sums_small_and_large() {
        let s = HeapStats {
            live_blocks: 3,
            large_allocs: 2,
            ..Default::default()
        };
        assert_eq!(s.live_total(), 5);
    }
}
