//! Allocation error type.

use std::fmt;

/// Why an allocation request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The operating system refused to map more memory.
    OutOfMemory,
    /// The requested size or alignment overflows internal arithmetic.
    SizeOverflow,
    /// Zero-sized allocations are not served by these heaps; callers
    /// (e.g. the `GlobalAlloc` adapter) handle them with dangling pointers.
    ZeroSize,
    /// The allocation could not be served *right now* without blocking:
    /// the thread's magazine is dry and the non-blocking submission path
    /// (request slot or free ring) is saturated. Purely transient —
    /// complete in-flight work and retry.
    WouldBlock,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of memory"),
            AllocError::SizeOverflow => write!(f, "size or alignment overflow"),
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::WouldBlock => write!(
                f,
                "allocation would block: magazine dry and submission path full"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(AllocError::OutOfMemory.to_string(), "out of memory");
        assert!(AllocError::SizeOverflow.to_string().contains("overflow"));
        assert!(AllocError::ZeroSize.to_string().contains("ero-sized"));
        assert!(AllocError::WouldBlock.to_string().contains("would block"));
    }
}
