//! Allocation error type.

use std::fmt;

/// Why an allocation request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The operating system refused to map more memory.
    OutOfMemory,
    /// The requested size or alignment overflows internal arithmetic.
    SizeOverflow,
    /// Zero-sized allocations are not served by these heaps; callers
    /// (e.g. the `GlobalAlloc` adapter) handle them with dangling pointers.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of memory"),
            AllocError::SizeOverflow => write!(f, "size or alignment overflow"),
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(AllocError::OutOfMemory.to_string(), "out of memory");
        assert!(AllocError::SizeOverflow.to_string().contains("overflow"));
        assert!(AllocError::ZeroSize.to_string().contains("ero-sized"));
    }
}
