//! The degradation heap: a bounded inline allocator of last resort.
//!
//! The offload design makes every allocation a round trip to a service
//! core — which means a wedged or dead service tier could turn `malloc`
//! into a hang. The hang-proof request path instead *degrades*: when
//! every shard has deadlined or died, the client allocates inline from
//! this shared heap. It is deliberately the "old world" the paper argues
//! against (a [`LockedHeap`] — one mutex, cross-core metadata traffic):
//! slow but always live, and only ever touched when the new world has
//! already failed.
//!
//! Frees route back here by address, exactly like shard routing: the
//! inner [`SegregatedHeap`] stamps the caller-chosen `owner` id into
//! every segment, so [`crate::owner_of_small_ptr`] distinguishes
//! fallback blocks from shard blocks for the whole life of the block.
//! That keeps `allocs == frees` exact at shutdown even for blocks
//! allocated during an outage and freed after recovery.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::classes::layout_to_class;
use crate::error::AllocError;
use crate::locked::LockedHeap;
use crate::seg_heap::SegregatedHeap;
use crate::stats::HeapStats;

/// A shared, lazily-activated inline allocator of last resort.
///
/// Small-class layouts only: large allocations carry their layout through
/// the free path and never consult the owner id, so degrading them here
/// would leave no address-pure way to route their frees home. A tier that
/// cannot serve a large allocation reports `OutOfMemory` instead.
pub struct FallbackHeap {
    inner: LockedHeap<SegregatedHeap>,
    /// Sticky flag: set on the first fallback allocation, never cleared.
    /// Free paths consult it (one relaxed load) before paying the
    /// owner-id read, so a process that never degrades never spends
    /// anything on this heap after construction.
    active: AtomicBool,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl FallbackHeap {
    /// Creates the heap; segments it maps will carry `owner` as their
    /// owner id. Nothing is mapped until the first allocation.
    #[must_use]
    pub fn new(owner: u64) -> Self {
        FallbackHeap {
            inner: LockedHeap::new(SegregatedHeap::new(owner)),
            active: AtomicBool::new(false),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    /// Whether any allocation was ever served from this heap. Once true,
    /// free paths must check block ownership before routing to a shard.
    #[inline]
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Allocates a small-class block inline.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] for non-small layouts (see the type
    /// docs) and whatever the inner heap reports otherwise.
    pub fn allocate(&self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout_to_class(layout.size(), layout.align()).is_none() {
            return Err(AllocError::OutOfMemory);
        }
        let p = self.inner.allocate(layout)?;
        self.active.store(true, Ordering::Relaxed);
        self.allocs.fetch_add(1, Ordering::Relaxed);
        Ok(p)
    }

    /// Frees a block this heap allocated, routed here by its owner id.
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block returned by [`FallbackHeap::allocate`]
    /// on this instance, relinquished by the caller.
    pub unsafe fn deallocate(&self, ptr: NonNull<u8>) {
        // SAFETY: forwarded contract — a live small block from the inner
        // heap, whose class the page descriptor recovers.
        self.inner.with(|h| unsafe { h.deallocate_by_ptr(ptr) });
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Blocks ever allocated inline.
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Blocks freed back.
    #[must_use]
    pub fn frees(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }

    /// Inner heap statistics.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    #[test]
    fn inactive_until_first_allocation() {
        let f = FallbackHeap::new(0xFFEE);
        assert!(!f.is_active());
        let p = f.allocate(layout(64)).unwrap();
        assert!(f.is_active());
        // SAFETY: fresh block from this heap.
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x31, 64);
            f.deallocate(p);
        }
        assert!(f.is_active(), "active is sticky");
        assert_eq!(f.allocs(), 1);
        assert_eq!(f.frees(), 1);
        assert_eq!(f.stats().live_blocks, 0);
    }

    #[test]
    fn blocks_carry_the_fallback_owner_id() {
        let f = FallbackHeap::new(0xFFEE);
        let p = f.allocate(layout(128)).unwrap();
        // SAFETY: live small block from a segregated heap.
        assert_eq!(unsafe { crate::owner_of_small_ptr(p) }, 0xFFEE);
        // SAFETY: block from this heap.
        unsafe { f.deallocate(p) };
    }

    #[test]
    fn large_layouts_are_refused() {
        let f = FallbackHeap::new(1);
        assert_eq!(f.allocate(layout(1 << 20)), Err(AllocError::OutOfMemory));
        assert!(!f.is_active(), "a refusal does not activate the heap");
    }

    #[test]
    fn usable_concurrently_from_many_threads() {
        let f = std::sync::Arc::new(FallbackHeap::new(7));
        let mut joins = Vec::new();
        for t in 0..4u8 {
            let f = std::sync::Arc::clone(&f);
            joins.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                for i in 0..200usize {
                    let l = layout(16 + (usize::from(t) * 31 + i * 7) % 512);
                    let p = f.allocate(l).unwrap();
                    // SAFETY: fresh block of at least 16 bytes.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), t, 16) };
                    mine.push(p);
                }
                for p in mine {
                    // SAFETY: blocks allocated above, freed exactly once.
                    unsafe { f.deallocate(p) };
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(f.allocs(), 800);
        assert_eq!(f.frees(), 800);
        assert_eq!(f.stats().live_blocks, 0);
    }
}
