//! The aggregated-layout heap: Figure 2's other half.
//!
//! "In Aggregated Layout, the first 8 bytes (assuming 64-bit word size) of
//! each free block are used as the pointer to the next free block." Free
//! lists are threaded *through the blocks themselves*, so allocator
//! metadata and user data share cache lines. On the plus side, the line a
//! `malloc()` touches is the very line the program will write next —
//! better spatial locality *when the allocator runs on the same core*; on
//! the minus side, this is the coupling that makes the allocator
//! impossible to pluck out onto its own core.
//!
//! The implementation reuses the segment/page machinery; only the free
//! list storage differs from [`crate::SegregatedHeap`].

use std::alloc::Layout;
use std::ptr::NonNull;

use crate::classes::{class_to_size, layout_to_class, NUM_CLASSES};
use crate::error::AllocError;
use crate::segment::{PageDesc, SegmentRef, NO_BLOCK, PAGE_SIZE};
use crate::stats::HeapStats;
use crate::sys::{round_to_os_page, Mapping};
use crate::Heap;

/// A single-owner heap whose free lists live inside the free blocks.
pub struct AggregatedHeap {
    owner_id: u64,
    segments: *mut crate::segment::SegmentHeader,
    bins: [*mut PageDesc; NUM_CLASSES],
    stats: HeapStats,
}

// SAFETY: identical ownership story to SegregatedHeap — the heap owns its
// segments exclusively and may migrate between threads.
unsafe impl Send for AggregatedHeap {}

impl AggregatedHeap {
    /// Creates an empty heap; memory is mapped on first use.
    pub fn new(owner_id: u64) -> Self {
        AggregatedHeap {
            owner_id,
            segments: std::ptr::null_mut(),
            bins: [std::ptr::null_mut(); NUM_CLASSES],
            stats: HeapStats::default(),
        }
    }

    fn bump_peak(&mut self) {
        let live = self.stats.live_bytes + self.stats.large_bytes;
        if live > self.stats.peak_live_bytes {
            self.stats.peak_live_bytes = live;
        }
    }

    /// Reads the in-block next pointer of free block `idx` (stored in the
    /// block's first 8 bytes as a block index, mimicking the pointer chain
    /// with bounds-checkable values).
    ///
    /// # Safety
    ///
    /// `idx` must be a currently-free block of an assigned page; the block
    /// was written by `push_free` when it was freed.
    unsafe fn read_next(seg: SegmentRef, page: usize, block_size: usize, idx: u16) -> u16 {
        let base = seg.page_base(page).as_ptr() as usize + idx as usize * block_size;
        // SAFETY: block start is in-bounds and 8-byte readable (min block
        // size is 16) and holds the u64 written at free time.
        unsafe { (base as *const u64).read() as u16 }
    }

    /// Writes the next pointer into the block itself — this store is the
    /// "metadata interspersed with data" of the aggregated layout.
    ///
    /// # Safety
    ///
    /// `idx` must address a block that is being freed (exclusive access).
    unsafe fn write_next(seg: SegmentRef, page: usize, block_size: usize, idx: u16, next: u16) {
        let base = seg.page_base(page).as_ptr() as usize + idx as usize * block_size;
        // SAFETY: in-bounds, 8-byte writable, block is dead (being freed).
        unsafe { (base as *mut u64).write(next as u64) };
    }

    /// # Safety
    ///
    /// Exclusive access; page assigned and has space.
    unsafe fn pop_block(&mut self, seg: SegmentRef, page: usize) -> NonNull<u8> {
        // SAFETY: per contract.
        let d = unsafe { seg.desc(page) };
        debug_assert!(d.has_space());
        let block_size = d.block_size as usize;
        let idx = if d.free_head != NO_BLOCK {
            let idx = d.free_head;
            // SAFETY: free_head names a free block whose first word was
            // written when it was pushed.
            d.free_head = unsafe { Self::read_next(seg, page, block_size, idx) };
            idx
        } else {
            let idx = d.bump;
            d.bump += 1;
            idx
        };
        d.used += 1;
        // SAFETY: idx < nblocks.
        let addr = unsafe { seg.page_base(page).as_ptr().add(idx as usize * block_size) };
        NonNull::new(addr).expect("block address non-null")
    }

    fn assign_fresh_page(&mut self, class: usize) -> Result<(SegmentRef, usize), AllocError> {
        let mut cur = self.segments;
        while !cur.is_null() {
            let seg = SegmentRef::from_raw(cur);
            // SAFETY: our live, exclusively-owned segment.
            if let Some(page) = unsafe { seg.alloc_page() } {
                self.init_page(seg, page, class);
                return Ok((seg, page));
            }
            // SAFETY: as above.
            cur = unsafe { seg.header().next_segment };
        }
        let seg = SegmentRef::create(self.owner_id)?;
        // SAFETY: fresh segment.
        unsafe { seg.header().next_segment = self.segments };
        self.segments = seg.base().as_ptr().cast();
        self.stats.segments += 1;
        // SAFETY: fresh segment has pages.
        let page = unsafe { seg.alloc_page() }.expect("fresh segment must have pages");
        self.init_page(seg, page, class);
        Ok((seg, page))
    }

    fn init_page(&mut self, seg: SegmentRef, page: usize, class: usize) {
        let size = class_to_size(crate::classes::SizeClass(class as u16));
        // SAFETY: freshly popped page, exclusive.
        let d = unsafe { seg.desc(page) };
        d.class = class as u16;
        d.block_size = size as u32;
        d.nblocks = (PAGE_SIZE / size) as u16;
        d.used = 0;
        d.bump = 0;
        d.free_head = NO_BLOCK;
        d.in_bin = true;
        d.next_in_bin = self.bins[class];
        self.bins[class] = d as *mut PageDesc;
        self.stats.pages_in_use += 1;
    }

    fn alloc_small(&mut self, class: usize) -> Result<NonNull<u8>, AllocError> {
        loop {
            let head = self.bins[class];
            if head.is_null() {
                break;
            }
            // SAFETY: bin entries are descriptors in our live segments.
            let d = unsafe { &mut *head };
            if d.has_space() {
                let page = d.page_index as usize;
                // SAFETY: descriptor is interior to its segment.
                let seg = unsafe {
                    SegmentRef::of_ptr(NonNull::new(head.cast::<u8>()).expect("non-null desc"))
                };
                // SAFETY: exclusive, assigned, has space.
                return Ok(unsafe { self.pop_block(seg, page) });
            }
            self.bins[class] = d.next_in_bin;
            d.in_bin = false;
            d.next_in_bin = std::ptr::null_mut();
        }
        let (seg, page) = self.assign_fresh_page(class)?;
        // SAFETY: fresh page has space.
        Ok(unsafe { self.pop_block(seg, page) })
    }
}

// SAFETY: same contract as SegregatedHeap — fresh, aligned, non-aliased
// blocks.
unsafe impl Heap for AggregatedHeap {
    fn allocate(&mut self, layout: Layout) -> Result<NonNull<u8>, AllocError> {
        if layout.size() == 0 {
            return Err(AllocError::ZeroSize);
        }
        match layout_to_class(layout.size(), layout.align()) {
            Some(class) => {
                let p = self.alloc_small(class.0 as usize)?;
                self.stats.live_blocks += 1;
                self.stats.live_bytes += class_to_size(class) as u64;
                self.stats.total_allocs += 1;
                self.bump_peak();
                Ok(p)
            }
            None => {
                let len = round_to_os_page(layout.size());
                let m = if layout.align() > crate::sys::os_page_size() {
                    Mapping::new_aligned(len, layout.align())?
                } else {
                    Mapping::new(len)?
                };
                let (ptr, _) = m.into_raw();
                self.stats.large_allocs += 1;
                self.stats.large_bytes += len as u64;
                self.stats.total_allocs += 1;
                self.bump_peak();
                Ok(ptr)
            }
        }
    }

    unsafe fn deallocate(&mut self, ptr: NonNull<u8>, layout: Layout) {
        match layout_to_class(layout.size(), layout.align()) {
            Some(class) => {
                // SAFETY: ptr came from this heap's allocate → interior to
                // a live segment of ours.
                let seg = unsafe { SegmentRef::of_ptr(ptr) };
                // SAFETY: as above.
                let (page, block) = unsafe { seg.locate(ptr) };
                // SAFETY: exclusive access.
                let d = unsafe { seg.desc(page) };
                debug_assert_eq!(d.class, class.0);
                let block_size = d.block_size as usize;
                // Thread the freed block onto the in-block list: the write
                // below touches the *user data* cache line.
                // SAFETY: block is being freed; we own it now.
                unsafe {
                    Self::write_next(seg, page, block_size, block as u16, d.free_head);
                }
                d.free_head = block as u16;
                d.used -= 1;
                if !d.in_bin {
                    let c = d.class as usize;
                    d.in_bin = true;
                    d.next_in_bin = self.bins[c];
                    self.bins[c] = d as *mut PageDesc;
                }
                self.stats.live_blocks -= 1;
                self.stats.live_bytes -= class_to_size(class) as u64;
                self.stats.total_frees += 1;
            }
            None => {
                let len = round_to_os_page(layout.size());
                // SAFETY: large blocks are standalone mappings of `len`.
                drop(unsafe { Mapping::from_raw(ptr, len) });
                self.stats.large_allocs -= 1;
                self.stats.large_bytes -= len as u64;
                self.stats.total_frees += 1;
            }
        }
    }

    fn stats(&self) -> HeapStats {
        self.stats
    }
}

impl Drop for AggregatedHeap {
    fn drop(&mut self) {
        let mut cur = self.segments;
        while !cur.is_null() {
            let seg = SegmentRef::from_raw(cur);
            // SAFETY: dropping the whole list; no further use.
            let next = unsafe { seg.header().next_segment };
            // SAFETY: as above.
            unsafe { seg.destroy() };
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn roundtrip_and_reuse() {
        let mut h = AggregatedHeap::new(2);
        let p = h.allocate(layout(64)).unwrap();
        // SAFETY: live block.
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x5A, 64);
            h.deallocate(p, layout(64));
        }
        let q = h.allocate(layout(64)).unwrap();
        assert_eq!(p, q, "LIFO reuse");
        // The reused block's first word held the free-list link — the
        // aggregated layout's hallmark; content is whatever the list left.
        // SAFETY: live block.
        unsafe { h.deallocate(q, layout(64)) };
    }

    #[test]
    fn free_list_chain_survives_many_pushes() {
        let mut h = AggregatedHeap::new(2);
        let ptrs: Vec<_> = (0..64).map(|_| h.allocate(layout(128)).unwrap()).collect();
        for p in &ptrs {
            // SAFETY: live blocks.
            unsafe { h.deallocate(*p, layout(128)) };
        }
        // Reallocate all 64: should come back in reverse (LIFO) order.
        let again: Vec<_> = (0..64).map(|_| h.allocate(layout(128)).unwrap()).collect();
        let expect: Vec<_> = ptrs.iter().rev().cloned().collect();
        assert_eq!(again, expect);
        for p in again {
            // SAFETY: live blocks.
            unsafe { h.deallocate(p, layout(128)) };
        }
    }

    #[test]
    fn no_overlap_across_classes() {
        let mut h = AggregatedHeap::new(2);
        let mut live = Vec::new();
        for i in 0..2000usize {
            let size = 16 + (i * 53) % 4000;
            let l = layout(size);
            let p = h.allocate(l).unwrap();
            // SAFETY: fresh block.
            unsafe { std::ptr::write_bytes(p.as_ptr(), (i % 251) as u8, size.min(32)) };
            live.push((p, l, (i % 251) as u8));
        }
        for (p, _, tag) in &live {
            // SAFETY: live block, first byte was written with the tag.
            assert_eq!(unsafe { *p.as_ptr() }, *tag);
        }
        for (p, l, _) in live {
            // SAFETY: live blocks.
            unsafe { h.deallocate(p, l) };
        }
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn stats_mirror_segmented_variant() {
        let mut h = AggregatedHeap::new(2);
        let p = h.allocate(layout(100)).unwrap();
        assert_eq!(h.stats().live_blocks, 1);
        assert_eq!(h.stats().live_bytes, 112); // class for 100
                                               // SAFETY: live block.
        unsafe { h.deallocate(p, layout(100)) };
        assert_eq!(h.stats().live_bytes, 0);
    }

    #[test]
    fn large_path_matches() {
        let mut h = AggregatedHeap::new(2);
        let l = layout(100_000);
        let p = h.allocate(l).unwrap();
        // SAFETY: 100 KB mapping.
        unsafe { *p.as_ptr().add(99_999) = 7 };
        // SAFETY: live large block.
        unsafe { h.deallocate(p, l) };
        assert_eq!(h.stats().large_allocs, 0);
    }
}
