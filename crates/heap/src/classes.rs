//! Size classes.
//!
//! Like TCMalloc and Mimalloc, small requests are rounded up to one of a
//! fixed set of block sizes — note, as the paper's Figure 2 caption does,
//! that "the block size is not necessarily a power of 2". Four classes per
//! doubling keeps worst-case internal fragmentation under 25 %.

/// Largest size served from size-class pages; bigger requests go to
/// dedicated mappings.
pub const SMALL_MAX: usize = 8192;

/// Block sizes, smallest to largest. All are multiples of 16, so any block
/// is at least 16-byte aligned.
pub const CLASS_SIZES: [usize; 30] = [
    16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
    1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096, 5120, 6144,
];

/// Number of size classes (the last two slots are 7168 and 8192, appended
/// below).
pub const NUM_CLASSES: usize = CLASS_SIZES.len() + 2;

/// A size-class index, `0..NUM_CLASSES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeClass(pub u16);

/// Returns the block size of class `c`.
///
/// # Panics
///
/// Panics if `c` is out of range.
pub fn class_to_size(c: SizeClass) -> usize {
    let i = c.0 as usize;
    if i < CLASS_SIZES.len() {
        CLASS_SIZES[i]
    } else if i == CLASS_SIZES.len() {
        7168
    } else if i == CLASS_SIZES.len() + 1 {
        8192
    } else {
        panic!("size class {i} out of range")
    }
}

/// Maps a request of `size` bytes to the smallest class that fits, or
/// `None` when the request must go to the large-allocation path.
pub fn size_to_class(size: usize) -> Option<SizeClass> {
    if size > SMALL_MAX {
        return None;
    }
    // Linear scan over 32 entries; callers on hot paths cache the result.
    for i in 0..NUM_CLASSES {
        let c = SizeClass(i as u16);
        if class_to_size(c) >= size {
            return Some(c);
        }
    }
    unreachable!("SMALL_MAX is covered by the last class")
}

/// Maps an (size, align) pair to a class whose blocks satisfy the
/// alignment, or `None` for the large path.
///
/// Blocks of class `c` sit at offsets `i * class_to_size(c)` inside a
/// 64 KiB page, so a block is aligned to the largest power of two dividing
/// its size. Alignments ≤ 16 are always satisfied; larger alignments route
/// to the next power-of-two class ≥ `max(size, align)`.
pub fn layout_to_class(size: usize, align: usize) -> Option<SizeClass> {
    debug_assert!(align.is_power_of_two());
    if align <= 16 {
        return size_to_class(size);
    }
    let need = size.max(align).next_power_of_two();
    if need > SMALL_MAX {
        return None;
    }
    // The power-of-two sizes all appear in the class table.
    size_to_class(need)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_multiples_of_16() {
        let mut prev = 0;
        for i in 0..NUM_CLASSES {
            let s = class_to_size(SizeClass(i as u16));
            assert!(s > prev, "classes must be strictly increasing");
            assert_eq!(s % 16, 0, "class {s} not a multiple of 16");
            prev = s;
        }
        assert_eq!(
            class_to_size(SizeClass((NUM_CLASSES - 1) as u16)),
            SMALL_MAX
        );
    }

    #[test]
    fn size_to_class_fits() {
        for size in 1..=SMALL_MAX {
            let c = size_to_class(size).expect("small size must have a class");
            assert!(class_to_size(c) >= size);
            if c.0 > 0 {
                assert!(
                    class_to_size(SizeClass(c.0 - 1)) < size,
                    "class must be the smallest that fits"
                );
            }
        }
    }

    #[test]
    fn oversize_has_no_class() {
        assert_eq!(size_to_class(SMALL_MAX + 1), None);
    }

    #[test]
    fn internal_fragmentation_bounded() {
        for size in 64..=SMALL_MAX {
            let c = size_to_class(size).unwrap();
            let waste = class_to_size(c) - size;
            assert!(
                (waste as f64) < 0.26 * size as f64,
                "size {size}: waste {waste} exceeds 26 %"
            );
        }
        // Below 64 bytes the 16-byte class spacing bounds waste absolutely.
        for size in 1..64 {
            let c = size_to_class(size).unwrap();
            assert!(class_to_size(c) - size < 16);
        }
    }

    #[test]
    fn alignment_routing() {
        // Small alignments use the normal table (48 is not a power of two).
        assert_eq!(layout_to_class(48, 8), size_to_class(48));
        // align 64 with size 48 must give a class divisible by 64.
        let c = layout_to_class(48, 64).unwrap();
        assert_eq!(class_to_size(c) % 64, 0);
        // Huge alignment goes large.
        assert_eq!(layout_to_class(64, 16384), None);
    }

    #[test]
    fn non_power_of_two_classes_exist() {
        // The paper highlights that block sizes need not be powers of two.
        assert!(CLASS_SIZES.iter().any(|s| !s.is_power_of_two()));
    }
}
