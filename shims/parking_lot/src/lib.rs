//! Minimal `parking_lot`-compatible locks.
//!
//! The workspace builds hermetically (no crates.io access), so this shim
//! provides the small subset of the `parking_lot` API the heap crate
//! uses — non-poisoning `Mutex` and `RwLock` — implemented over
//! `std::sync`. Poisoning is erased by recovering the inner guard: a
//! panicked critical section in this codebase is already a fatal test
//! failure, matching parking_lot's no-poison semantics.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        assert!(l.try_write().is_none());
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn mutex_survives_panicked_section() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
