//! Minimal `proptest`-compatible property-testing harness.
//!
//! The workspace builds hermetically (no crates.io access), so this shim
//! implements the subset of proptest the repository's property tests use:
//! the [`proptest!`] macro with `proptest_config`, integer-range and tuple
//! strategies, [`any`], `prop_map`, [`prop_oneof!`],
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with its (deterministic) case
//!   number instead of a minimized counterexample;
//! * fixed per-test seeding — each named test gets a stable stream, so
//!   failures reproduce run-to-run; `.proptest-regressions` files are
//!   ignored.

pub mod strategy;

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind case
    //! generation.

    /// How many cases each property runs (the subset of proptest's config
    /// the tests use).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ stream, seeded per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the stream for one named property test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and rustc
            // versions, unique enough per test.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                // SplitMix64 expansion of the hash.
                h = h.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type, for [`crate::any`].

    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty vec length range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The canonical strategy for `T`: the full domain.
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics the failing case).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics the failing case).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        let s = (1u32..10, 5usize..=6);
        for _ in 0..1000 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_zero_weight() {
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let s = prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::test_runner::TestRng::for_test("map");
        let s = (0u8..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_values(
            a in 1u8..4,
            b in any::<u64>(),
            v in prop::collection::vec(0u32..7, 1..4),
        ) {
            prop_assert!((1..4).contains(&a));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(b, b);
        }
    }
}
