//! Value-generation strategies: ranges, tuples, map, weighted choice.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, for boxed strategies.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Strategy returned by [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among same-valued strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
