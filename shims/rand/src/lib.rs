//! Minimal `rand` 0.9-compatible PRNG.
//!
//! The workspace builds hermetically (no crates.io access), so this shim
//! implements the subset of the `rand` API the workload generators use:
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer
//! ranges, and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — the same construction the real `SmallRng` uses on
//! 64-bit targets — so quality is adequate for workload synthesis, though
//! exact streams differ from upstream `rand`.

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types drawable from the standard uniform distribution via
/// [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits give a uniform float in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardUniform for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A source of randomness.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value from the standard uniform distribution: `[0, 1)`
    /// for floats, the full domain for integers and `bool`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator; this shim aliases it to [`SmallRng`].
    pub type StdRng = SmallRng;
}

/// Draws a `u64` uniformly from `[0, bound)` by widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-32 for the
/// bounds used in workload generation).
fn bounded(rng: &mut (impl Rng + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Integer types uniformly samplable over ranges. The blanket
/// [`SampleRange`] impls below are generic over this trait so type
/// inference can unify an integer-literal range with the expected output
/// type, as upstream `rand` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Bit-preserving widening cast (`as u64` semantics).
    fn to_u64(self) -> u64;
    /// Truncating cast back (`as Self` semantics).
    fn from_u64(v: u64) -> Self;
    /// `self.wrapping_add(v as Self)`.
    fn wrapping_add_u64(self, v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            fn wrapping_add_u64(self, v: u64) -> Self {
                self.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        self.start.wrapping_add_u64(bounded(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.to_u64().wrapping_sub(lo.to_u64()).wrapping_add(1);
        if span == 0 {
            // Full-width inclusive range of a 64-bit type.
            return T::from_u64(rng.next_u64());
        }
        lo.wrapping_add_u64(bounded(rng, span))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=5);
            assert!(w <= 5);
            let s: i32 = rng.random_range(-3..4);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(rng.random_range(5u8..=5), 5);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
