//! Minimal vendored libc bindings.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so instead of the full `libc` crate we declare exactly the
//! glibc surface the heap, offload, and pmu crates use: anonymous memory
//! mapping, the page-size sysconf, thread affinity, and the raw
//! syscall/ioctl/read/close quartet that `perf_event_open(2)` requires
//! (glibc has no wrapper for that syscall). Constants are the Linux ABI
//! values; everything is gated on `target_os = "linux"`, which is the
//! only platform this repository targets (see DESIGN.md).

#![allow(non_camel_case_types)]
#![allow(non_snake_case)] // CPU_SET/CPU_ZERO/CPU_ISSET are canonical names
#![allow(non_upper_case_globals)] // SYS_perf_event_open is the canonical name
#![cfg(target_os = "linux")]

pub use core::ffi::c_void;

/// C `int`.
pub type c_int = i32;
/// C `long` (LP64).
pub type c_long = i64;
/// C `unsigned long` (LP64).
pub type c_ulong = u64;
/// POSIX `size_t`.
pub type size_t = usize;
/// POSIX `ssize_t`.
pub type ssize_t = isize;
/// POSIX `off_t` (LP64).
pub type off_t = i64;
/// POSIX `pid_t`.
pub type pid_t = i32;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 2;
/// Changes are private to this process.
pub const MAP_PRIVATE: c_int = 0x02;
/// The mapping is not backed by any file.
pub const MAP_ANONYMOUS: c_int = 0x20;
/// `mmap` error return.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
/// `sysconf` name for the VM page size.
pub const _SC_PAGESIZE: c_int = 30;

/// Operation not permitted.
pub const EPERM: c_int = 1;
/// No such file or directory (perf: unsupported generic event).
pub const ENOENT: c_int = 2;
/// No such device (perf: PMU hardware absent, e.g. some VMs).
pub const ENODEV: c_int = 19;
/// Permission denied (perf: `perf_event_paranoid` too strict).
pub const EACCES: c_int = 13;
/// Invalid argument.
pub const EINVAL: c_int = 22;
/// Function not implemented (perf: kernel built without perf events, or
/// the syscall filtered by seccomp).
pub const ENOSYS: c_int = 38;
/// Operation not supported.
pub const EOPNOTSUPP: c_int = 95;

/// Syscall number of `perf_event_open(2)`.
#[cfg(target_arch = "x86_64")]
pub const SYS_perf_event_open: c_long = 298;
/// Syscall number of `perf_event_open(2)`.
#[cfg(target_arch = "aarch64")]
pub const SYS_perf_event_open: c_long = 241;

/// Number of `u64` words in a `cpu_set_t` (1024 CPUs).
const CPU_SET_WORDS: usize = 16;

/// Fixed-size CPU affinity mask (glibc layout: 1024 bits).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SET_WORDS],
}

/// Adds `cpu` to the affinity mask.
///
/// # Safety
///
/// `cpuset` must point to a valid, initialized `cpu_set_t`. Out-of-range
/// CPUs are ignored (matching glibc's bounds behaviour).
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    if cpu < CPU_SET_WORDS * 64 {
        cpuset.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// Removes every CPU from the affinity mask.
///
/// # Safety
///
/// `cpuset` must point to a valid `cpu_set_t`.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ZERO(cpuset: &mut cpu_set_t) {
    cpuset.bits = [0; CPU_SET_WORDS];
}

/// Returns whether `cpu` is in the affinity mask.
///
/// # Safety
///
/// `cpuset` must point to a valid, initialized `cpu_set_t`.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ISSET(cpu: usize, cpuset: &cpu_set_t) -> bool {
    cpu < CPU_SET_WORDS * 64 && cpuset.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

extern "C" {
    /// Maps pages of memory. See `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;

    /// Unmaps pages of memory. See `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;

    /// Queries a system configuration value. See `sysconf(3)`.
    pub fn sysconf(name: c_int) -> c_long;

    /// Sets the CPU affinity of a thread. See `sched_setaffinity(2)`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;

    /// Returns the CPU the calling thread runs on. See `sched_getcpu(3)`.
    pub fn sched_getcpu() -> c_int;

    /// Indirect system call. See `syscall(2)`. Used for
    /// `perf_event_open`, which glibc does not wrap.
    pub fn syscall(num: c_long, ...) -> c_long;

    /// Device control. See `ioctl(2)`. Used for the `PERF_EVENT_IOC_*`
    /// enable/disable/reset requests on perf event fds.
    pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;

    /// Reads from a file descriptor. See `read(2)`. Used to read perf
    /// counter groups.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;

    /// Closes a file descriptor. See `close(2)`.
    pub fn close(fd: c_int) -> c_int;

    /// Address of the calling thread's `errno`. See `errno(3)`.
    pub fn __errno_location() -> *mut c_int;
}

/// The calling thread's current `errno` value.
///
/// # Safety
///
/// Always safe to call; named `unsafe`-free here because
/// `__errno_location` has no preconditions on glibc.
#[must_use]
pub fn errno() -> c_int {
    // SAFETY: __errno_location always returns a valid thread-local.
    unsafe { *__errno_location() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        // SAFETY: sysconf with a valid name has no preconditions.
        let sz = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(sz >= 4096, "page size reported as {sz}");
    }

    #[test]
    fn mmap_munmap_roundtrip() {
        // SAFETY: fresh anonymous private mapping, written in bounds and
        // unmapped exactly once.
        unsafe {
            let p = mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xA5;
            assert_eq!(*(p as *mut u8), 0xA5);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn errno_reflects_failed_close() {
        // SAFETY: closing an invalid fd is harmless and sets errno.
        let rc = unsafe { close(-1) };
        assert_eq!(rc, -1);
        assert_eq!(errno(), 9, "close(-1) sets EBADF");
    }

    #[test]
    fn raw_syscall_works() {
        // SYS_getpid: 39 on x86_64, 172 on aarch64 — use sched_getcpu's
        // value range instead to stay arch-neutral: issue a harmless
        // syscall via the libc wrapper path and compare with the raw one.
        #[cfg(target_arch = "x86_64")]
        const SYS_GETPID: c_long = 39;
        #[cfg(target_arch = "aarch64")]
        const SYS_GETPID: c_long = 172;
        // SAFETY: getpid has no arguments or preconditions.
        let pid = unsafe { syscall(SYS_GETPID) };
        assert_eq!(pid, i64::from(std::process::id()));
    }

    #[test]
    fn cpu_set_bits_roundtrip() {
        // SAFETY: plain bit manipulation on a local mask.
        unsafe {
            let mut set: cpu_set_t = core::mem::zeroed();
            assert!(!CPU_ISSET(3, &set));
            CPU_SET(3, &mut set);
            assert!(CPU_ISSET(3, &set));
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(3, &set));
        }
    }
}
