//! Minimal `criterion`-compatible benchmark harness.
//!
//! The workspace builds hermetically (no crates.io access), so this shim
//! provides the API surface the `crates/bench` benches use — groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — with a simple
//! median-of-batches timer instead of criterion's statistical engine.
//! Output is one `name ... time: X ns/iter` line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.0, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up, then size the batch so one sample takes ~1 ms.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(5) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut best = f64::INFINITY;
    for _ in 0..samples.min(5) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        best = best.min(b.ns_per_iter);
    }
    println!("  {name:<40} time: {best:.1} ns/iter");
}

/// Collects bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
///
/// Ignores CLI arguments (`cargo bench`/`cargo test` pass filter flags the
/// shim does not implement).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets to check they work; keep
            // that fast by only smoke-running under the test profile.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
